"""Unit tests for the classful TBF scheduler."""

import math

import pytest

from repro.lustre.rpc import Rpc
from repro.lustre.tbf import TbfRule, TbfScheduler


def make_rpc(job="jobA"):
    return Rpc(job_id=job, client_id="c0", size_bytes=1 << 20)


def drain(sched, now):
    """Dequeue everything serviceable at `now`."""
    out = []
    while True:
        rpc = sched.dequeue(now)
        if rpc is None:
            return out
        out.append(rpc)


class TestRuleManagement:
    def test_start_and_list_rules(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=10))
        s.start_rule(0.0, TbfRule("r2", "jobB", rate=20))
        assert s.rule_names() == ["r1", "r2"]
        assert s.get_rule("r1").rate == 10
        assert s.has_rule_for_job("jobA")
        assert not s.has_rule_for_job("jobC")

    def test_duplicate_rule_name_rejected(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=10))
        with pytest.raises(ValueError):
            s.start_rule(0.0, TbfRule("r1", "jobB", rate=10))

    def test_duplicate_job_rejected(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=10))
        with pytest.raises(ValueError):
            s.start_rule(0.0, TbfRule("r2", "jobA", rate=10))

    def test_stop_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            TbfScheduler().stop_rule(0.0, "ghost")

    def test_change_rate_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            TbfScheduler().change_rate(0.0, "ghost", 5)

    def test_invalid_rule_parameters(self):
        with pytest.raises(ValueError):
            TbfRule("r", "j", rate=-1)
        with pytest.raises(ValueError):
            TbfRule("r", "j", rate=1, depth=0)

    def test_stop_rule_moves_backlog_to_fallback(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=0.001, depth=1))
        first = make_rpc()
        s.enqueue(0.0, first)
        s.enqueue(0.0, make_rpc())
        s.enqueue(0.0, make_rpc())
        # Bucket starts full (1 token): one RPC is serviceable, two are gated.
        assert s.dequeue(0.0) is first
        moved = s.stop_rule(0.0, "r1")
        assert moved == 2
        # Backlog now drains without tokens through fallback.
        assert len(drain(s, 0.0)) == 2
        assert s.served_fallback == 2


class TestTokenGating:
    def test_initial_burst_limited_by_depth(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=10, depth=3))
        for _ in range(10):
            s.enqueue(0.0, make_rpc())
        assert len(drain(s, 0.0)) == 3  # full bucket = 3 tokens

    def test_tokens_mature_over_time(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=10, depth=3))
        for _ in range(10):
            s.enqueue(0.0, make_rpc())
        drain(s, 0.0)
        # After 0.5 s at 10 tokens/s, 5 tokens matured but the depth caps
        # the bucket at 3 — a single instant can serve at most `depth`.
        assert len(drain(s, 0.5)) == 3
        # Sampling frequently enough captures the full rate instead.
        total = sum(len(drain(s, 0.5 + 0.01 * i)) for i in range(1, 51))
        assert total == pytest.approx(5, abs=1)

    def test_served_rate_bounded(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=100, depth=3))
        for _ in range(1000):
            s.enqueue(0.0, make_rpc())
        total = 0
        t = 0.0
        while t <= 2.0:
            total += len(drain(s, t))
            t += 0.001
        assert total <= 3 + 100 * 2.0 + 1
        assert total >= 100 * 2.0 - 1

    def test_fcfs_within_queue(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=1000, depth=10))
        rpcs = [make_rpc() for _ in range(5)]
        for r in rpcs:
            s.enqueue(0.0, r)
        assert drain(s, 0.0) == rpcs

    def test_next_wake_reports_token_deadline(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=2, depth=1))
        s.enqueue(0.0, make_rpc())
        s.enqueue(0.0, make_rpc())
        assert s.dequeue(0.0) is not None  # consumes the initial token
        assert s.dequeue(0.0) is None
        assert s.next_wake(0.0) == pytest.approx(0.5)

    def test_next_wake_inf_when_empty(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=2))
        assert s.next_wake(0.0) == math.inf

    def test_zero_rate_queue_blocked_until_rerate(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("r1", "jobA", rate=1000, depth=1))
        s.enqueue(0.0, make_rpc())
        assert s.dequeue(0.0) is not None
        s.change_rate(0.0, "r1", 0)
        s.enqueue(0.0, make_rpc())
        assert s.dequeue(100.0) is None
        assert s.next_wake(100.0) == math.inf
        s.change_rate(100.0, "r1", 10)
        assert s.dequeue(100.1) is not None


class TestCrossQueueOrdering:
    def test_earliest_deadline_first(self):
        s = TbfScheduler()
        # jobA refills fast, jobB slowly; both start with empty-ish buckets.
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=1))
        s.start_rule(0.0, TbfRule("rB", "jobB", rate=1, depth=1))
        a1, b1 = make_rpc("jobA"), make_rpc("jobB")
        s.enqueue(0.0, a1)
        s.enqueue(0.0, b1)
        got = [s.dequeue(0.0), s.dequeue(0.0)]
        assert set(got) == {a1, b1}  # both initial tokens available
        # Now both buckets are empty; next deadlines: A at +0.1, B at +1.0.
        a2, b2 = make_rpc("jobA"), make_rpc("jobB")
        s.enqueue(0.0, b2)
        s.enqueue(0.0, a2)
        assert s.dequeue(1.5) is a2  # A's deadline (0.1) beats B's (1.0)
        assert s.dequeue(1.5) is b2

    def test_rank_breaks_deadline_ties(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=3, rank=5))
        s.start_rule(0.0, TbfRule("rB", "jobB", rate=10, depth=3, rank=1))
        a, b = make_rpc("jobA"), make_rpc("jobB")
        s.enqueue(0.0, a)
        s.enqueue(0.0, b)
        # Identical deadlines (both buckets full): lower rank (B) first.
        assert s.dequeue(0.0) is b
        assert s.dequeue(0.0) is a


class TestFallback:
    def test_unmatched_jobs_use_fallback(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10))
        stranger = make_rpc("jobX")
        s.enqueue(0.0, stranger)
        got = s.dequeue(0.0)
        assert got is stranger
        assert got.via_fallback

    def test_ready_rule_queue_beats_fallback(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=3))
        a = make_rpc("jobA")
        x = make_rpc("jobX")
        s.enqueue(0.0, x)
        s.enqueue(0.0, a)
        assert s.dequeue(0.0) is a  # token-backed queue wins
        assert s.dequeue(0.0) is x

    def test_fallback_served_when_tokens_exhausted(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=1))
        a1, a2 = make_rpc("jobA"), make_rpc("jobA")
        x = make_rpc("jobX")
        s.enqueue(0.0, a1)
        s.enqueue(0.0, a2)
        s.enqueue(0.0, x)
        assert s.dequeue(0.0) is a1  # consumes jobA's only token
        assert s.dequeue(0.0) is x  # jobA gated; fallback is opportunistic
        assert s.dequeue(0.0) is None

    def test_pending_accounting(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobX"))
        assert s.pending == 3
        assert s.pending_for_job("jobA") == 2
        assert s.pending_for_job("jobX") == 1
        assert s.fallback_depth == 1


class TestRateChange:
    def test_rate_increase_takes_effect_immediately(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=1))
        for _ in range(20):
            s.enqueue(0.0, make_rpc())
        drain(s, 0.0)  # burn the initial token
        assert len(drain(s, 0.001)) == 0
        s.change_rate(0.001, "rA", 1000)
        # With 1000 t/s and depth 1, draining every ms serves ~1 per ms.
        got = sum(len(drain(s, 0.001 + 0.001 * i)) for i in range(1, 11))
        assert got == pytest.approx(10, abs=1)

    def test_rank_update_via_change_rate(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, rank=1))
        s.change_rate(0.0, "rA", 10, rank=7)
        assert s.get_rule("rA").rank == 7

    def test_served_counters(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=3))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobX"))
        drain(s, 0.0)
        assert s.served_with_token == 1
        assert s.served_fallback == 1


class TestStaleHeapEntries:
    """Lazy invalidation: heap entries outlive stops/re-rates and must be
    skipped by version (or refreshed by deadline) instead of served."""

    def test_next_wake_skips_entry_of_stopped_rule(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))  # pushes a heap entry
        s.stop_rule(0.0, "rA")  # bumps the version; entry is now stale
        # The stale entry must not report a wake deadline for a rule that
        # no longer exists (its backlog drains via fallback, untimed).
        assert s.next_wake(0.0) == math.inf
        got = s.dequeue(0.0)
        assert got is not None and got.via_fallback

    def test_next_wake_skips_version_stale_entry_after_rerate(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=2, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        assert s.dequeue(0.0) is not None  # burn the initial token
        assert s.dequeue(0.0) is None  # re-pushed with deadline +0.5
        # Re-rate slower: the old +0.5 entry is version-stale; the live
        # deadline is +2.0 (empty bucket at 0.5 t/s).
        s.change_rate(0.0, "rA", 0.5)
        assert s.next_wake(0.0) == pytest.approx(2.0)
        assert s.dequeue(1.0) is None
        assert s.dequeue(2.0) is not None

    def test_dequeue_skips_version_stale_entry_after_rerate(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        assert s.dequeue(0.0) is not None  # re-pushed with deadline +1.0
        # Re-rate faster: the stale +1.0 entry sits in the heap next to the
        # live +0.01 one; dequeue must serve from the live entry only.
        s.change_rate(0.0, "rA", 100)
        assert s.dequeue(0.5) is not None
        assert s.pending == 0

    def test_next_wake_refreshes_deadline_of_rerated_bucket(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=2, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        assert s.dequeue(0.0) is not None
        assert s.dequeue(0.0) is None  # heap entry at +0.5
        # Slow the bucket behind the scheduler's back (no version bump):
        # the entry's deadline is optimistic and must be re-pushed at the
        # bucket's actual ready time, not served early.
        s._by_job["jobA"].bucket.set_rate(0.0, 0.25)
        assert s.next_wake(0.0) == pytest.approx(4.0)
        assert s.dequeue(1.0) is None
        assert s.dequeue(4.0) is not None


class TestRankChangeScheduling:
    def test_change_rate_rank_swap_reorders_deadline_ties(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=1, rank=0))
        s.start_rule(0.0, TbfRule("rB", "jobB", rate=10, depth=1, rank=1))
        a1, a2 = make_rpc("jobA"), make_rpc("jobA")
        b1, b2 = make_rpc("jobB"), make_rpc("jobB")
        for rpc in (a1, b1, a2, b2):
            s.enqueue(0.0, rpc)
        # Equal full-bucket deadlines: the initial hierarchy serves A first.
        assert s.dequeue(0.0) is a1
        assert s.dequeue(0.0) is b1
        assert s.dequeue(0.0) is None  # both buckets now empty
        # The daemon demotes A and promotes B mid-flight (same rates).
        s.change_rate(0.0, "rA", 10, rank=5)
        s.change_rate(0.0, "rB", 10, rank=0)
        assert s.get_rule("rA").rank == 5
        assert s.get_rule("rB").rank == 0
        # Both refill deadlines mature at +0.1; the new hierarchy decides,
        # and the pre-change (stale) heap entries must not resurrect the
        # old order.
        assert s.dequeue(0.2) is b2
        assert s.dequeue(0.2) is a2

    def test_change_rate_preserves_accrued_tokens_and_rank(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=3, rank=2))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        # Only the slope changes: the full depth-3 bucket still serves the
        # backlog immediately after a re-rate, and rank is untouched when
        # not passed.
        s.change_rate(0.0, "rA", 0.001)
        assert len(drain(s, 0.0)) == 2
        assert s.get_rule("rA").rank == 2
