"""The fused TbfScheduler.poll path and the O(1) occupancy counters."""

import math

import pytest

from repro.lustre.rpc import Rpc
from repro.lustre.tbf import TbfRule, TbfScheduler


def make_rpc(job_id: str) -> Rpc:
    return Rpc(job_id=job_id, client_id="c0", size_bytes=1 << 20)


class TestPollFusion:
    def test_poll_equals_dequeue_then_next_wake(self):
        def build():
            s = TbfScheduler()
            s.start_rule(0.0, TbfRule("rA", "jobA", rate=2, depth=1))
            s.start_rule(0.0, TbfRule("rB", "jobB", rate=4, depth=1, rank=1))
            for _ in range(3):
                s.enqueue(0.0, make_rpc("jobA"))
                s.enqueue(0.0, make_rpc("jobB"))
            s.enqueue(0.0, make_rpc("unruled"))
            return s

        fused, split = build(), build()
        now = 0.0
        for _ in range(40):
            rpc_f, wake_f = fused.poll(now)
            rpc_s = split.dequeue(now)
            if rpc_s is None:
                wake_s = split.next_wake(now)
                assert rpc_f is None
                assert wake_f == wake_s
                if math.isinf(wake_s):
                    break
                now = wake_s
            else:
                assert rpc_f is not None
                assert rpc_f.job_id == rpc_s.job_id
                assert rpc_f.via_fallback == rpc_s.via_fallback
        assert fused.pending == split.pending == 0

    def test_poll_returns_wake_for_future_deadline(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=2, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        rpc, _ = s.poll(0.0)
        assert rpc is not None  # burns the initial token
        rpc, wake = s.poll(0.0)
        assert rpc is None
        assert wake == pytest.approx(0.5)

    def test_poll_serves_fallback_when_tokens_are_dry(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=1, depth=1))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("stranger"))
        assert s.poll(0.0)[0].job_id == "jobA"  # token-backed first
        served = s.poll(0.0)[0]  # jobA's bucket is dry → fallback wins
        assert served.job_id == "stranger"
        assert served.via_fallback

    def test_poll_empty_scheduler(self):
        s = TbfScheduler()
        assert s.poll(0.0) == (None, math.inf)


class TestOccupancyCounters:
    def test_pending_tracks_rule_and_fallback_queues(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=3))
        assert s.pending == 0
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("jobA"))
        s.enqueue(0.0, make_rpc("nobody"))
        assert s.pending == 3
        assert s.pending_for_job("jobA") == 2
        assert s.pending_for_job("nobody") == 1
        while s.dequeue(10.0) is not None:
            pass
        assert s.pending == 0
        assert s.pending_for_job("jobA") == 0
        assert s.pending_for_job("nobody") == 0

    def test_stop_rule_moves_counts_to_fallback(self):
        s = TbfScheduler()
        s.start_rule(0.0, TbfRule("rA", "jobA", rate=10, depth=3))
        for _ in range(4):
            s.enqueue(0.0, make_rpc("jobA"))
        assert s.pending_for_job("jobA") == 4
        moved = s.stop_rule(0.0, "rA")
        assert moved == 4
        assert s.pending == 4
        assert s.pending_for_job("jobA") == 4  # now counted in fallback
        assert s.fallback_depth == 4
        for _ in range(4):
            rpc = s.dequeue(0.0)
            assert rpc.via_fallback
        assert s.pending == 0
        assert s.pending_for_job("jobA") == 0

    def test_fallback_counts_interleaved_jobs(self):
        s = TbfScheduler()
        for job in ("x", "y", "x", "x", "y"):
            s.enqueue(0.0, make_rpc(job))
        assert s.pending_for_job("x") == 3
        assert s.pending_for_job("y") == 2
        s.dequeue(0.0)  # FIFO: first "x"
        assert s.pending_for_job("x") == 2
        assert s.pending_for_job("y") == 2
        assert s.pending == 4
