"""Unit tests for file striping across OSTs."""

import pytest

from repro.lustre import ClientProcess
from repro.lustre.striping import StripeLayout
from repro.sim import Environment

MB = 1 << 20


class TestStripeLayout:
    def test_round_robin_mapping(self, make_multi_ost_stack):
        env = Environment()
        osts, osses, net = make_multi_ost_stack(env, n_osts=3)
        layout = StripeLayout(osses, stripe_size=MB)
        assert layout.stripe_count == 3
        assert layout.target_for_offset(0) is osses[0]
        assert layout.target_for_offset(MB) is osses[1]
        assert layout.target_for_offset(2 * MB) is osses[2]
        assert layout.target_for_offset(3 * MB) is osses[0]

    def test_sub_stripe_offsets_stay_on_one_target(self, make_multi_ost_stack):
        env = Environment()
        osts, osses, net = make_multi_ost_stack(env, n_osts=2)
        layout = StripeLayout(osses, stripe_size=4 * MB)
        for offset in (0, MB, 3 * MB):
            assert layout.target_for_offset(offset) is osses[0]
        assert layout.target_for_offset(4 * MB) is osses[1]

    def test_validation(self, make_multi_ost_stack):
        env = Environment()
        osts, osses, net = make_multi_ost_stack(env)
        with pytest.raises(ValueError):
            StripeLayout([], stripe_size=MB)
        with pytest.raises(ValueError):
            StripeLayout(osses, stripe_size=0)
        layout = StripeLayout(osses)
        with pytest.raises(ValueError):
            layout.target_for_offset(-1)


class TestStripedClient:
    def test_write_spreads_bytes_evenly(self, make_multi_ost_stack):
        env = Environment()
        osts, osses, net = make_multi_ost_stack(env, n_osts=2)
        layout = StripeLayout(osses, stripe_size=MB)

        def program(io):
            yield from io.write(40 * MB)

        ClientProcess(
            env, net, osses[0], "job", "c0", program, layout=layout
        )
        env.run()
        assert osts[0].bytes_served == 20 * MB
        assert osts[1].bytes_served == 20 * MB

    def test_default_layout_uses_single_oss(self, make_multi_ost_stack):
        env = Environment()
        osts, osses, net = make_multi_ost_stack(env, n_osts=2)

        def program(io):
            yield from io.write(10 * MB)

        ClientProcess(env, net, osses[0], "job", "c0", program)
        env.run()
        assert osts[0].bytes_served == 10 * MB
        assert osts[1].bytes_served == 0

    def test_striping_aggregates_bandwidth(self, make_multi_ost_stack):
        """A striped file draws on both OSTs' bandwidth concurrently."""
        env = Environment()
        osts, osses, net = make_multi_ost_stack(env, n_osts=2, capacity_mbps=100)
        layout = StripeLayout(osses, stripe_size=MB)
        done = []

        def program(io):
            yield from io.write(100 * MB)
            done.append(io.now)

        ClientProcess(
            env, net, osses[0], "job", "c0", program, layout=layout, window=16
        )
        env.run()
        # 100 MB over 2x100 MB/s ≈ 0.5 s (vs 1 s on a single OST).
        assert done[0] == pytest.approx(0.5, rel=0.15)
