"""Integration tests: client → network → OSS(NRS) → OST."""

import pytest

from repro.lustre import (
    ClientProcess,
    FifoPolicy,
    Network,
    Oss,
    Ost,
    TbfPolicy,
    TbfRule,
)
from repro.sim import Environment

MB = 1 << 20


class TestFifoPath:
    def test_single_job_achieves_disk_bandwidth(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy, capacity_mbps=100)
        client = ClientProcess(
            env, net, oss, "job1", "c0", seq(200 * MB), window=8
        )
        env.run()
        # 200 MB at 100 MB/s => ~2 s end-to-end.
        assert env.now == pytest.approx(2.0, rel=0.05)
        assert client.finished
        assert oss.completed_rpcs == 200

    def test_two_jobs_share_fifo_equally(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy, capacity_mbps=100)
        done_at = {}

        def tracked(total, tag):
            def program(io):
                yield from io.write(total)
                done_at[tag] = io.now

            return program

        ClientProcess(env, net, oss, "job1", "c0", tracked(100 * MB, "j1"))
        ClientProcess(env, net, oss, "job2", "c1", tracked(100 * MB, "j2"))
        env.run()
        # Identical demands through FIFO finish together at ~2 s.
        assert done_at["j1"] == pytest.approx(done_at["j2"], rel=0.05)
        assert env.now == pytest.approx(2.0, rel=0.1)

    def test_jobstats_counts_arrivals(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy)
        ClientProcess(env, net, oss, "job1", "c0", seq(10 * MB))
        env.run()
        # Stats were never cleared: all 10 arrivals and completions visible.
        snap = oss.jobstats.snapshot()
        assert snap["job1"].arrived == 10
        assert snap["job1"].served == 10
        assert snap["job1"].bytes_arrived == 10 * MB
        assert snap["job1"].bytes_served == 10 * MB
        oss.jobstats.clear()
        assert oss.jobstats.snapshot() == {}
        assert oss.jobstats.lifetime_rpcs("job1") == 10


class TestTbfPath:
    def test_rule_caps_job_throughput(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, TbfPolicy, capacity_mbps=100)
        # Cap job1 at 20 RPC/s (= 20 MB/s with 1 MiB RPCs).
        policy.start_rule(TbfRule("r1", "job1", rate=20))
        ClientProcess(env, net, oss, "job1", "c0", seq(40 * MB))
        env.run()
        # 40 RPCs at 20/s ≈ 2 s (small initial burst shaves a little).
        assert env.now == pytest.approx(2.0, abs=0.3)

    def test_unmatched_job_unlimited_via_fallback(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, TbfPolicy, capacity_mbps=100)
        policy.start_rule(TbfRule("r1", "jobOther", rate=1))
        ClientProcess(env, net, oss, "job1", "c0", seq(100 * MB))
        env.run()
        # job1 has no rule: disk-limited, not token-limited.
        assert env.now == pytest.approx(1.0, rel=0.1)

    def test_tbf_not_work_conserving(self, make_stack, seq):
        """The §II motivation: token-gated queues idle the disk."""
        env = Environment()
        ost, policy, oss, net = make_stack(env, TbfPolicy, capacity_mbps=100)
        policy.start_rule(TbfRule("r1", "job1", rate=10))
        ClientProcess(env, net, oss, "job1", "c0", seq(20 * MB))
        env.run()
        # Disk could do 100 MB/s but tokens allow ~10: utilization ~10 %.
        assert ost.utilization(0.0) < 0.25

    def test_two_jobs_rate_split_enforced(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, TbfPolicy, capacity_mbps=100)
        policy.start_rule(TbfRule("r1", "job1", rate=75))
        policy.start_rule(TbfRule("r2", "job2", rate=25))
        bytes_done = {"job1": 0, "job2": 0}
        oss.on_complete(lambda rpc: bytes_done.__setitem__(
            rpc.job_id, bytes_done[rpc.job_id] + rpc.size_bytes
        ))
        ClientProcess(env, net, oss, "job1", "c0", seq(300 * MB))
        ClientProcess(env, net, oss, "job2", "c1", seq(300 * MB))
        env.run(until=2.0)
        ratio = bytes_done["job1"] / max(1, bytes_done["job2"])
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_rate_change_mid_run_takes_effect(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, TbfPolicy, capacity_mbps=1000)
        policy.start_rule(TbfRule("r1", "job1", rate=10))
        ClientProcess(env, net, oss, "job1", "c0", seq(200 * MB))

        def controller(env):
            yield env.timeout(1.0)
            policy.change_rate("r1", 1000)

        env.process(controller(env))
        env.run()
        # ~10 RPCs in first second, remaining ~190 in ~0.2 s after the bump.
        assert env.now == pytest.approx(1.2, abs=0.2)


class TestNetworkLatency:
    def test_latency_delays_completion(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy, latency_s=0.01)
        done = []

        def program(io):
            yield io.submit(1 * MB)
            done.append(io.now)

        ClientProcess(env, net, oss, "job1", "c0", program)
        env.run()
        # 10 ms there + 10 ms back + 10 ms service (1 MB at 100 MB/s).
        assert done[0] == pytest.approx(0.03, abs=0.002)

    def test_negative_latency_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Network(env, latency_s=-1.0)


class TestClientWindowing:
    def test_window_limits_inflight_rpcs(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy, capacity_mbps=10, io_threads=32)
        max_active = []

        def watcher(env):
            while True:
                max_active.append(ost.active_transfers)
                yield env.timeout(0.05)

        watch = env.process(watcher(env))
        ClientProcess(env, net, oss, "job1", "c0", seq(50 * MB), window=4)
        env.run(until=3.0)
        assert max(max_active) <= 4

    def test_invalid_write_size(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy)

        def program(io):
            yield from io.write(0)

        ClientProcess(env, net, oss, "job1", "c0", program)
        with pytest.raises(ValueError):
            env.run()

    def test_partial_tail_rpc(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, FifoPolicy)
        client = ClientProcess(
            env, net, oss, "job1", "c0", seq(int(2.5 * MB))
        )
        env.run()
        assert client.io.rpcs_issued == 3  # 1 MiB + 1 MiB + 0.5 MiB
        assert client.io.bytes_written == int(2.5 * MB)
