"""Package-level surface tests: public API, version, examples run."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_init_docstring_example_runs():
    """The quickstart in the package docstring must stay true."""
    from repro.scenarios import REGISTRY, run_scenario

    result = run_scenario(REGISTRY.build("quickstart", file_mib=16.0))
    assert result.summary.aggregate_mib_s > 0


def test_legacy_surface_still_works():
    """The pre-pipeline config+jobs API remains supported."""
    from repro.cluster import ClusterConfig, run_scenario
    from repro.workloads import ScenarioConfig, scenario_allocation

    scenario = scenario_allocation(
        ScenarioConfig(data_scale=1 / 256, heavy_procs=2)
    )
    result = run_scenario(scenario, ClusterConfig(mechanism="adaptbf"))
    assert result.summary.aggregate_mib_s > 0


@pytest.mark.parametrize(
    "script", ["quickstart.py", "custom_resource.py"]
)
def test_example_scripts_execute(script):
    """The fast examples run end-to-end as real subprocesses."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_subpackages_have_docstrings():
    """Every public module documents itself (deliverable e)."""
    import importlib
    import pkgutil

    import repro

    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name.endswith("__main__"):
            continue
        module = importlib.import_module(module_info.name)
        assert module.__doc__, f"{module_info.name} lacks a docstring"
