"""Tests for the declarative pipeline: spec → build → run_scenario."""

import pytest

from repro.cluster.builder import build
from repro.scenarios import (
    REGISTRY,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TopologySpec,
    from_scenario,
    run_mechanisms,
    run_scenario,
)
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.scenarios import ScenarioConfig, scenario_allocation
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20

TINY = ScenarioConfig(data_scale=1 / 256, time_scale=1 / 16, heavy_procs=2)


def tiny_jobs(n=2, volume=8 * MIB):
    return tuple(
        JobSpec(
            job_id=f"j{i}",
            nodes=i + 1,
            processes=(ProcessSpec(SequentialWritePattern(volume)),),
        )
        for i in range(n)
    )


class TestSpecValidation:
    def test_mechanism_normalized(self):
        policy = PolicySpec(mechanism="  Static ")
        assert policy.mechanism == "static"


    def test_unknown_mechanism(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            PolicySpec(mechanism="bogus")

    def test_heterogeneous_capacities_length_checked(self):
        with pytest.raises(ValueError, match="capacities"):
            TopologySpec(n_osts=2, ost_capacities_mib_s=(100.0,))

    def test_heterogeneous_capacities_resolve(self):
        topo = TopologySpec(n_osts=3, ost_capacities_mib_s=(100, 200, 300))
        assert topo.capacities_mib_s == (100.0, 200.0, 300.0)
        assert topo.total_capacity_mib_s == 600.0
        assert topo.max_token_rate(1) == pytest.approx(200.0)

    def test_uniform_capacities_resolve(self):
        topo = TopologySpec(n_osts=2, capacity_mib_s=512.0)
        assert topo.capacities_mib_s == (512.0, 512.0)

    def test_stripe_count_bounded_by_osts(self):
        with pytest.raises(ValueError, match="stripe_count"):
            TopologySpec(n_osts=2, stripe_count=3)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            RunSpec(metrics=("summary", "bogus"))

    def test_duplicate_job_ids_rejected(self):
        jobs = tiny_jobs(1) * 2
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(name="dup", jobs=jobs)

    def test_bin_defaults_to_interval(self):
        spec = ScenarioSpec(
            name="t", jobs=tiny_jobs(), policy=PolicySpec(interval_s=0.25)
        )
        assert spec.bin_s == 0.25
        assert spec.with_run(bin_s=0.5).bin_s == 0.5

    def test_with_policy_returns_new_frozen_spec(self):
        spec = ScenarioSpec(name="t", jobs=tiny_jobs())
        other = spec.with_policy(mechanism="none")
        assert spec.policy.mechanism == "adaptbf"
        assert other.policy.mechanism == "none"
        assert other.jobs == spec.jobs

    def test_keep_history_validation(self):
        with pytest.raises(ValueError, match="keep_history"):
            PolicySpec(keep_history=0)

    def test_describe_mentions_jobs_and_policy(self):
        spec = ScenarioSpec(name="t", jobs=tiny_jobs())
        text = spec.describe()
        assert "j0" in text and "adaptbf" in text


class TestBuild:
    def test_build_materializes_topology(self):
        spec = ScenarioSpec(
            name="t",
            jobs=tiny_jobs(),
            topology=TopologySpec(n_osts=3, capacity_mib_s=128.0),
        )
        cluster = build(spec)
        assert len(cluster.osts) == 3
        assert len(cluster.controllers) == 3
        assert cluster.total_capacity_bps() == 3 * 128.0 * MIB
        assert cluster.spec is spec

    def test_build_heterogeneous_token_rates(self):
        spec = ScenarioSpec(
            name="t",
            jobs=tiny_jobs(),
            topology=TopologySpec(n_osts=2, ost_capacities_mib_s=(100, 400)),
        )
        cluster = build(spec)
        assert cluster.osts[0].capacity_bps == 100 * MIB
        assert cluster.osts[1].capacity_bps == 400 * MIB
        rates = [c.controller.max_token_rate for c in cluster.controllers]
        assert rates == [pytest.approx(100.0), pytest.approx(400.0)]

    def test_baselines_have_no_controllers(self):
        spec = ScenarioSpec(
            name="t", jobs=tiny_jobs(), policy=PolicySpec(mechanism="none")
        )
        assert build(spec).controllers == []

    def test_legacy_config_view(self):
        spec = ScenarioSpec(
            name="t",
            jobs=tiny_jobs(),
            topology=TopologySpec(n_osts=2, capacity_mib_s=256.0),
        )
        config = build(spec).config
        assert config.n_osts == 2
        assert config.capacity_mib_s == 256.0


class TestRunScenario:
    def test_returns_run_result_with_spec(self):
        spec = ScenarioSpec(name="t", jobs=tiny_jobs())
        result = run_scenario(spec)
        assert result.spec is spec
        assert result.clients_finished
        assert result.summary.aggregate_mib_s > 0

    def test_same_spec_is_deterministic(self):
        spec = REGISTRY.build("burst-storm", n_jobs=3, seed=5, data_scale=1 / 64)
        first = run_scenario(spec)
        second = run_scenario(REGISTRY.build("burst-storm", n_jobs=3, seed=5, data_scale=1 / 64))
        assert first.summary.per_job_mib_s == second.summary.per_job_mib_s
        assert first.job_completion_s == second.job_completion_s

    def test_different_seed_changes_workload(self):
        a = REGISTRY.build("burst-storm", n_jobs=3, seed=1)
        b = REGISTRY.build("burst-storm", n_jobs=3, seed=2)
        assert a.jobs != b.jobs

    def test_metrics_selection_skips_timeline(self):
        spec = ScenarioSpec(
            name="t",
            jobs=tiny_jobs(volume=128 * MIB),  # long enough for >=1 round
            run=RunSpec(metrics=("history", "utilization")),
        )
        result = run_scenario(spec)
        assert result.timeline.total_bytes() == 0  # not recorded
        assert result.history  # still collected
        assert result.ost_utilization > 0

    def test_metrics_selection_skips_history(self):
        spec = ScenarioSpec(
            name="t", jobs=tiny_jobs(), run=RunSpec(metrics=("summary",))
        )
        result = run_scenario(spec)
        assert result.history == []
        assert result.summary.aggregate_mib_s > 0
        assert result.ost_utilization == 0.0

    def test_run_mechanisms_covers_all(self):
        spec = from_scenario(scenario_allocation(TINY))
        results = run_mechanisms(spec)
        assert set(results) == {"none", "static", "adaptbf"}
        for mechanism, result in results.items():
            assert result.mechanism == mechanism


class TestNewScenariosRunToCompletion:
    """Acceptance: each newly expressible scenario builds and runs."""

    def test_burst_storm(self):
        spec = REGISTRY.build(
            "burst-storm", n_jobs=3, seed=3, data_scale=1 / 64, time_scale=1 / 16
        )
        result = run_scenario(spec)
        assert result.duration_s > 0
        assert result.history  # controller actually ran
        # Mixed priorities: at least two distinct node counts among jobs.
        assert len({job.nodes for job in spec.jobs}) >= 2

    def test_elastic_churn(self):
        spec = REGISTRY.build(
            "elastic-churn",
            waves=2,
            jobs_per_wave=2,
            data_scale=1 / 64,
            time_scale=1 / 8,
        )
        result = run_scenario(spec)
        assert result.clients_finished
        # Jobs from different waves complete at different times (churn).
        waves = {
            job_id.split(".")[0] for job_id in result.job_completion_s
        }
        assert waves == {"wave1", "wave2"}

    def test_hetero_osts(self):
        spec = REGISTRY.build("hetero-osts", capacities="64,256", duration=0.0)
        result = run_scenario(spec)
        assert result.clients_finished
        assert len(result.per_ost_histories) == 2
        cluster = build(spec)
        assert cluster.osts[0].capacity_bps == 64 * MIB
        assert cluster.osts[1].capacity_bps == 256 * MIB
