"""The workload-axis scenarios: trace-replay, poisson-storm, diurnal-mix."""

import pytest

from repro.scenarios import REGISTRY, run_scenario
from repro.workloads.trace import EXAMPLE_TRACE, load_trace, records_by_job

MB = 1 << 20


class TestTraceReplayScenario:
    def test_one_job_per_trace_job(self):
        spec = REGISTRY.build("trace-replay")
        trace_jobs = sorted(records_by_job(load_trace(EXAMPLE_TRACE)))
        assert spec.job_ids == trace_jobs
        assert all(job.nodes == 1 for job in spec.jobs)

    def test_nodes_assigned_in_sorted_order(self):
        spec = REGISTRY.build("trace-replay", nodes="3,1")
        # analysis, checkpoint, ingest sorted; counts cycle 3,1,3.
        assert [job.nodes for job in spec.jobs] == [3, 1, 3]

    def test_custom_trace(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "t_offset_s,job,op,nbytes\n0.0,solo,write,1048576\n"
        )
        spec = REGISTRY.build("trace-replay", trace=str(path))
        assert spec.job_ids == ["solo"]

    def test_runs_to_completion(self):
        result = run_scenario(
            REGISTRY.build("trace-replay", time_scale=0.25, data_scale=0.25)
        )
        assert result.clients_finished
        assert result.summary.aggregate_mib_s > 0

    def test_malformed_trace_fails_at_build(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t_offset_s,job,op,nbytes\n0.0,a,chmod,1\n")
        with pytest.raises(ValueError):
            REGISTRY.build("trace-replay", trace=str(path))


class TestPoissonStormScenario:
    def test_seeded_mix_is_reproducible(self):
        a = REGISTRY.build("poisson-storm", seed=5)
        b = REGISTRY.build("poisson-storm", seed=5)
        assert a.jobs == b.jobs

    def test_different_seed_different_mix(self):
        a = REGISTRY.build("poisson-storm", seed=5)
        b = REGISTRY.build("poisson-storm", seed=6)
        assert a.jobs != b.jobs

    def test_hog_optional(self):
        with_hog = REGISTRY.build("poisson-storm", n_jobs=2, with_hog=True)
        without = REGISTRY.build("poisson-storm", n_jobs=2, with_hog=False)
        assert "hog" in with_hog.job_ids
        assert "hog" not in without.job_ids

    def test_runs(self):
        result = run_scenario(
            REGISTRY.build(
                "poisson-storm", n_jobs=2, duration_s=2.0, with_hog=False
            )
        )
        assert result.summary.aggregate_mib_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            REGISTRY.build("poisson-storm", n_jobs=0)
        with pytest.raises(ValueError):
            REGISTRY.build("poisson-storm", duration_s=0)


class TestDiurnalMixScenario:
    def test_structure(self):
        spec = REGISTRY.build("diurnal-mix")
        assert spec.job_ids == ["diurnal", "hog"]
        assert spec.jobs[0].nodes == 4

    def test_runs(self):
        result = run_scenario(
            REGISTRY.build(
                "diurnal-mix", days=1, phase_s=1.0, hog_mib=16.0
            )
        )
        assert result.clients_finished

    def test_validation(self):
        with pytest.raises(ValueError):
            REGISTRY.build("diurnal-mix", days=0)
        with pytest.raises(ValueError):
            REGISTRY.build("diurnal-mix", phase_s=0)


class TestScale500OstScenario:
    def test_structure(self):
        spec = REGISTRY.build("scale-500ost")
        assert spec.topology.n_osts == 500
        assert spec.topology.stripe_count == 8
        assert spec.topology.io_threads == 4
        assert sorted(spec.job_ids) == ["hog", "science"]

    def test_runs_reduced(self):
        result = run_scenario(
            REGISTRY.build(
                "scale-500ost", n_osts=20, procs=8, file_mib=8.0, duration=0.3
            )
        )
        assert result.summary.aggregate_mib_s > 0
        assert len(result.per_ost_histories) == 20


class TestClientSwarmScenario:
    def test_clients_split_evenly_over_jobs(self):
        spec = REGISTRY.build("client-swarm", n_clients=10, n_jobs=3)
        per_job = [len(job.processes) for job in spec.jobs]
        assert sum(per_job) == 10
        assert max(per_job) - min(per_job) <= 1

    def test_priority_tiers_cycle(self):
        spec = REGISTRY.build("client-swarm", n_clients=8, n_jobs=8)
        assert [job.nodes for job in spec.jobs] == [1, 2, 4, 8, 1, 2, 4, 8]

    def test_more_jobs_than_clients_clamps(self):
        spec = REGISTRY.build("client-swarm", n_clients=2, n_jobs=8)
        assert len(spec.jobs) == 2

    def test_runs_reduced(self):
        result = run_scenario(
            REGISTRY.build("client-swarm", n_clients=40, duration=0.3)
        )
        assert result.summary.aggregate_mib_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            REGISTRY.build("client-swarm", n_clients=0)
        with pytest.raises(ValueError):
            REGISTRY.build("client-swarm", n_jobs=0)
