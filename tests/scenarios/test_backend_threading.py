"""Backend selection threaded through the declarative pipeline.

``RunSpec.backend`` → builder → CLI → campaign axis: the selector must
arrive at the Environment from every entry point, and — the point of the
whole seam — must never change a result: figure CSVs are byte-identical
across backends.
"""

import pytest

from repro.cluster.builder import build
from repro.scenarios import REGISTRY, run_scenario
from repro.scenarios.spec import RunSpec
from repro.sim.engine import Environment


class TestRunSpec:
    def test_default_backend_is_heap(self):
        assert RunSpec().backend == "heap"

    def test_backend_field_round_trips(self):
        assert RunSpec(backend="array").backend == "array"

    def test_unknown_backend_rejected_listing_available(self):
        with pytest.raises(ValueError, match="heap"):
            RunSpec(backend="btree")

    def test_with_run_threads_backend(self):
        spec = REGISTRY.build("quickstart").with_run(backend="array")
        assert spec.run.backend == "array"
        # Other run fields are preserved.
        assert spec.run.duration_s == REGISTRY.build("quickstart").run.duration_s


class TestBuilder:
    def test_build_uses_spec_backend(self):
        spec = REGISTRY.build("quickstart").with_run(backend="array")
        assert build(spec).env.backend == "array"

    def test_explicit_env_wins_over_spec(self):
        spec = REGISTRY.build("quickstart").with_run(backend="array")
        env = Environment()  # caller-configured: heap
        assert build(spec, env=env).env is env


class TestCampaignAxis:
    def test_backend_axis_resolves_into_run_spec(self):
        from repro.campaigns.spec import CampaignSpec, ParameterAxis

        campaign = CampaignSpec(
            name="backend-sweep",
            scenario="quickstart",
            axes=(ParameterAxis("backend", ("heap", "array")),),
        )
        cells = campaign.cells()
        assert [campaign.resolve(c).run.backend for c in cells] == [
            "heap",
            "array",
        ]
        # The reserved param never reaches the scenario factory.
        for cell in cells:
            assert "backend" in campaign.build_params(cell)


class TestCli:
    def test_run_backend_flag(self, capsys):
        from repro.experiments.__main__ import main

        assert (
            main(
                ["run", "quickstart", "--backend", "array", "--duration", "0.3"]
            )
            == 0
        )
        assert "quickstart" in capsys.readouterr().out

    def test_run_unknown_backend_flag_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit, match="unknown kernel backend"):
            main(["run", "quickstart", "--backend", "btree"])

    def test_figure_adapters_reject_backend_flag(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit, match="registered scenarios"):
            main(["run", "fig3", "--backend", "array"])


class TestCsvByteIdentity:
    def test_quickstart_csvs_identical_across_backends(self, tmp_path):
        from repro.metrics.export import export_all

        written = {}
        for backend in ("heap", "array"):
            spec = REGISTRY.build("quickstart").with_run(
                duration_s=1.0, backend=backend
            )
            result = run_scenario(spec)
            out = tmp_path / backend
            written[backend] = export_all(
                {result.mechanism: result}, out, prefix="quickstart"
            )
        assert written["heap"].keys() == written["array"].keys()
        for key, heap_path in written["heap"].items():
            array_path = written["array"][key]
            assert heap_path.read_bytes() == array_path.read_bytes(), key
