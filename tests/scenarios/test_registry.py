"""Tests for the scenario registry: registration, lookup, describe."""

import pytest

from repro.scenarios import REGISTRY, ScenarioRegistry, ScenarioSpec
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20


def tiny_spec(name="tiny", volume_mib: float = 4.0) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        jobs=(
            JobSpec(
                job_id="j0",
                nodes=1,
                processes=(ProcessSpec(SequentialWritePattern(int(volume_mib * MIB))),),
            ),
        ),
    )


class TestRegistration:
    def test_register_and_build(self):
        registry = ScenarioRegistry()
        registry.register("tiny", lambda volume_mib=4.0: tiny_spec(volume_mib=volume_mib))
        spec = registry.build("tiny", volume_mib=8.0)
        assert spec.jobs[0].total_bytes_hint == 8 * MIB

    def test_decorator_form(self):
        registry = ScenarioRegistry()

        @registry.register("deco", description="a decorated scenario")
        def _factory(volume_mib: float = 4.0) -> ScenarioSpec:
            return tiny_spec(volume_mib=volume_mib)

        assert "deco" in registry
        assert registry.get("deco").description == "a decorated scenario"

    def test_duplicate_name_rejected(self):
        registry = ScenarioRegistry()
        registry.register("dup", lambda: tiny_spec())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup", lambda: tiny_spec())

    def test_overwrite_opt_in(self):
        registry = ScenarioRegistry()
        registry.register("v", lambda: tiny_spec(volume_mib=1))
        registry.register("v", lambda: tiny_spec(volume_mib=2), overwrite=True)
        assert registry.build("v").jobs[0].total_bytes_hint == 2 * MIB

    def test_names_normalized(self):
        registry = ScenarioRegistry()
        registry.register("My_Scenario", lambda: tiny_spec())
        assert registry.names() == ["my-scenario"]
        assert "my-scenario" in registry
        assert "MY_SCENARIO" in registry

    def test_factory_without_defaults_rejected(self):
        registry = ScenarioRegistry()

        def bad(required_param) -> ScenarioSpec:  # pragma: no cover
            return tiny_spec()

        with pytest.raises(ValueError, match="needs a default"):
            registry.register("bad", bad)


class TestLookup:
    def test_unknown_name_lists_options(self):
        registry = ScenarioRegistry()
        registry.register("only", lambda: tiny_spec())
        with pytest.raises(KeyError, match="only"):
            registry.get("nope")

    def test_unknown_param_rejected(self):
        registry = ScenarioRegistry()
        registry.register("t", lambda volume_mib=4.0: tiny_spec(volume_mib=volume_mib))
        with pytest.raises(ValueError, match="no parameter"):
            registry.build("t", bogus=1)

    def test_coerce_types_from_strings(self):
        registry = ScenarioRegistry()
        registry.register(
            "t",
            lambda volume_mib=4.0, procs=2, label="x", flag=True: tiny_spec(),
        )
        coerced = registry.coerce(
            "t", {"volume_mib": "8.5", "procs": "3", "label": "y", "flag": "false"}
        )
        assert coerced == {
            "volume_mib": 8.5,
            "procs": 3,
            "label": "y",
            "flag": False,
        }

    def test_coerce_rejects_bad_values(self):
        registry = ScenarioRegistry()
        registry.register("t", lambda procs=2: tiny_spec())
        with pytest.raises(ValueError, match="expected int"):
            registry.coerce("t", {"procs": "many"})


class TestDescribe:
    def test_describe_round_trip(self):
        """describe() names every parameter the factory accepts, and the
        described defaults rebuild the identical spec."""
        registry = ScenarioRegistry()

        @registry.register("rt", description="round trip")
        def _factory(volume_mib: float = 4.0, procs: int = 1) -> ScenarioSpec:
            return tiny_spec(name="rt", volume_mib=volume_mib)

        text = registry.describe("rt")
        assert "rt: round trip" in text
        entry = registry.get("rt")
        for key in ("volume_mib", "procs"):
            assert key in entry.params
            assert key in text
        # Rebuilding from the advertised defaults reproduces the same spec.
        assert entry.build(**dict(entry.params)) == entry.build()

    def test_builtin_scenarios_describe(self):
        for name in REGISTRY.names():
            text = REGISTRY.describe(name)
            assert name in text
            assert "topology:" in text


class TestBuiltins:
    def test_expected_scenarios_present(self):
        names = set(REGISTRY.names())
        assert {
            "quickstart",
            "allocation",
            "redistribution",
            "recompensation",
            "multiost",
            "burst-storm",
            "elastic-churn",
            "hetero-osts",
        } <= names

    def test_builtin_specs_validate(self):
        for name in REGISTRY.names():
            spec = REGISTRY.build(name)
            assert spec.jobs, name
