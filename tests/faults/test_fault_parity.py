"""Determinism parity under faults, and figure-CSV stability without them.

The kernel-backend contract — identical ``(time, priority, seq)`` dispatch
streams on every backend — must hold *with injectors in the event loop*,
because injector drivers are ordinary simulation processes.  And the fault
machinery must be inert when unused: fault-free figure exports stay
byte-for-byte reproducible run over run.
"""

import filecmp

import pytest

from repro.experiments import fig3_fig4, fig9
from repro.metrics.export import export_all
from repro.scenarios import REGISTRY
from repro.sim.tracediff import diff_backends, format_report
from repro.workloads.scenarios import ScenarioConfig

TEST_SCALE = ScenarioConfig(data_scale=1 / 16, time_scale=1 / 16)


def faulted_spec(fault, params):
    return (
        REGISTRY.build(
            "quickstart", file_mib=16.0, procs=2, capacity_mib_s=256.0
        )
        .with_run(seed=3)
        .with_fault(fault, params)
    )


class TestBackendParityUnderFaults:
    @pytest.mark.parametrize(
        "fault,params",
        [
            ("ost-crash", {"start_s": 0.05, "duration_s": 0.1}),
            ("ost-degrade", {"start_s": 0.05, "duration_s": 0.1, "factor": 0.2}),
            ("net-delay", {"start_s": 0.05, "duration_s": 0.1, "factor": 5.0}),
            ("net-delay", {"start_s": 0.05, "duration_s": 0.1, "partition": True}),
            ("client-churn", {"start_s": 0.05, "duration_s": 0.1, "leaves": 1}),
        ],
    )
    def test_heap_and_array_dispatch_identically(self, fault, params):
        report = diff_backends(faulted_spec(fault, params))
        assert report.equal, format_report(report)

    def test_stacked_faults_stay_in_parity(self):
        spec = faulted_spec("ost-crash", {"start_s": 0.05, "duration_s": 0.05})
        spec = spec.with_fault(
            "net-delay", {"start_s": 0.12, "duration_s": 0.05, "factor": 3.0}
        )
        report = diff_backends(spec)
        assert report.equal, format_report(report)


class TestFigureCsvByteIdentity:
    """Fault-free figure CSVs are byte-identical run over run."""

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        # Timeline binning is vectorized; the rest of tests/faults stays
        # numpy-free so the scalar-fallback CI leg can run it.
        pytest.importorskip("numpy")

    def test_fig3_fig4_csvs_stable(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            comparison = fig3_fig4.run(TEST_SCALE)
            written = export_all(
                comparison.results, tmp_path / run, prefix="fig3_fig4"
            )
            paths.append(sorted(written.values()))
        assert [p.name for p in paths[0]] == [p.name for p in paths[1]]
        for left, right in zip(*paths):
            assert filecmp.cmp(left, right, shallow=False), left.name

    def test_fig9_report_stable(self):
        runs = [
            fig9.report(fig9.run(TEST_SCALE, intervals_s=(0.1, 0.5)))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
