"""The chaos-shootout campaign: spec shape, chaos metrics, resume.

Covers the fault axis end-to-end at the campaign layer: the built-in
``chaos-shootout`` sweep, the chaos columns :func:`run_cell` adds to
``CellRow``, byte-identity of ``rows.json`` across ``--jobs`` fan-out,
the ranked report table, and mid-fault-window resume where the schedule
is rebuilt registry-free from the store's canonical spec.
"""

import pytest

from repro.campaigns import (
    CAMPAIGNS,
    CampaignSpec,
    JsonlStore,
    ParameterAxis,
    SqliteStore,
    run_campaign,
    write_artifacts,
)
from repro.campaigns.aggregate import CellRow
from repro.core.mechanism import MECHANISMS
from repro.metrics.report import format_chaos_table


def small_chaos_campaign(**base_overrides):
    base = {
        "file_mib": 16.0,
        "procs": 2,
        "capacity_mib_s": 256.0,
        "fault": "ost-crash",
        "fault_params": {"start_s": 0.05, "duration_s": 0.1},
    }
    base.update(base_overrides)
    return CampaignSpec(
        name="chaos-tiny",
        scenario="quickstart",
        axes=(ParameterAxis("mechanism", ("adaptbf", "none")),),
        base_params=base,
    )


class TestBuiltinSpec:
    def test_sweeps_every_mechanism_by_default(self):
        spec = CAMPAIGNS.build("chaos-shootout")
        assert spec.n_cells == len(MECHANISMS.names())
        (axis,) = spec.axes
        assert axis.param == "mechanism"
        assert set(axis.values) == set(MECHANISMS.names())
        assert spec.base_params["fault"] == "ost-crash"
        assert spec.base_params["fault_params"]["start_s"] == 0.4

    def test_mechanism_subset(self):
        spec = CAMPAIGNS.build("chaos-shootout", mechanisms="adaptbf,none")
        assert [axis.values for axis in spec.axes] == [("adaptbf", "none")]

    def test_unknown_mechanism_fails_fast(self):
        with pytest.raises(KeyError):
            CAMPAIGNS.build("chaos-shootout", mechanisms="adaptbf,warp9")

    def test_unknown_fault_fails_fast(self):
        with pytest.raises(KeyError):
            CAMPAIGNS.build("chaos-shootout", fault="osd-crash")

    def test_resolved_cells_carry_the_fault(self):
        spec = CAMPAIGNS.build("chaos-shootout", mechanisms="adaptbf")
        resolved = spec.resolve(next(iter(spec.cells())))
        assert [f.name for f in resolved.faults] == ["ost-crash"]


class TestChaosColumns:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(small_chaos_campaign(), jobs=1)

    def test_rows_populated(self, result):
        for row in result.rows:
            assert row.clients_finished
            assert row.rpcs_dropped > 0
            assert row.rpcs_retried >= row.rpcs_dropped
            assert row.recovery_s >= 0.0
            assert 0.0 <= row.fairness_during <= 1.0
            assert 0.0 <= row.fairness_after <= 1.0

    def test_fault_free_rows_keep_identity_defaults(self):
        spec = CampaignSpec(
            name="no-fault",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("none",)),),
            base_params={"file_mib": 16.0, "procs": 2},
        )
        (row,) = run_campaign(spec, jobs=1).rows
        assert row.recovery_s == 0.0
        assert row.fairness_during == 1.0
        assert row.fairness_after == 1.0
        assert row.rpcs_dropped == 0
        assert row.rpcs_retried == 0

    def test_chaos_table_ranks_mechanisms(self, result):
        table = format_chaos_table(result)
        assert "ost-crash" in table
        assert "recovery" in table
        for name in ("adaptbf", "none"):
            assert name in table

    def test_cell_row_round_trip(self, result):
        for row in result.rows:
            assert CellRow.from_dict(row.as_dict()) == row

    def test_legacy_payload_without_chaos_fields_loads(self, result):
        payload = result.rows[0].as_dict()
        for key in (
            "recovery_s",
            "fairness_during",
            "fairness_after",
            "rpcs_dropped",
            "rpcs_retried",
        ):
            payload.pop(key)
        row = CellRow.from_dict(payload)
        assert row.recovery_s == 0.0
        assert row.fairness_during == 1.0
        assert row.rpcs_dropped == 0


class TestRerunCommands:
    def test_rerun_emits_fault_flags(self, tmp_path):
        import json

        result = run_campaign(small_chaos_campaign(), jobs=1)
        written = write_artifacts(result, tmp_path)
        manifest = json.loads(written["manifest"].read_text())
        reruns = [cell["rerun"] for cell in manifest["cells"]]
        assert reruns
        for cmd in reruns:
            assert "--fault ost-crash" in cmd
            assert "--fault-param start_s=0.05" in cmd
            assert "--fault-param duration_s=0.1" in cmd
            assert "--param fault" not in cmd


class TestDeterminismAndResume:
    def test_rows_byte_identical_across_jobs(self, tmp_path):
        artifacts = []
        for jobs in (1, 3):
            result = run_campaign(small_chaos_campaign(), jobs=jobs)
            artifacts.append(write_artifacts(result, tmp_path / f"j{jobs}"))
        assert (
            artifacts[0]["rows"].read_bytes()
            == artifacts[1]["rows"].read_bytes()
        )

    def test_spec_round_trip_preserves_fault_params(self):
        spec = small_chaos_campaign()
        rebuilt = CampaignSpec.from_json_dict(spec.to_json_dict())
        assert rebuilt.base_params["fault"] == "ost-crash"
        assert rebuilt.base_params["fault_params"] == {
            "start_s": 0.05,
            "duration_s": 0.1,
        }
        assert rebuilt.spec_hash() == spec.spec_hash()

    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    def test_resume_mid_fault_is_byte_identical(self, tmp_path, kind):
        spec = small_chaos_campaign()
        baseline = write_artifacts(
            run_campaign(spec, jobs=1), tmp_path / "baseline"
        )
        if kind == "jsonl":
            store = JsonlStore(tmp_path / "store")
        else:
            store = SqliteStore(tmp_path / "store.db")
        partial = run_campaign(spec, jobs=1, store=store, max_cells=1)
        assert not partial.complete
        # Resume from the store's canonical form only — no registry, no
        # original factory call — exactly what `campaign resume` does.
        rebuilt = CampaignSpec.from_json_dict(spec.to_json_dict())
        resumed = run_campaign(rebuilt, jobs=1, store=store, resume=True)
        assert resumed.complete
        assert resumed.skipped == 1
        written = write_artifacts(resumed, tmp_path / "resumed")
        assert (
            written["rows"].read_bytes() == baseline["rows"].read_bytes()
        )
