"""The fault registry and the frozen ``FaultSpec`` it validates against."""

import pickle

import pytest

from repro.faults import FAULTS, FaultSpec
from repro.faults.builtin import OstCrashInjector
from repro.scenarios import REGISTRY

BUILTINS = ("client-churn", "net-delay", "ost-crash", "ost-degrade")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(FAULTS.names())

    def test_build_stamps_name_and_params(self):
        injector = FAULTS.build("ost-crash", start_s=0.2)
        assert isinstance(injector, OstCrashInjector)
        assert injector.name == "ost-crash"
        assert injector.params["start_s"] == 0.2
        assert injector.params["duration_s"] == 0.5  # factory default

    def test_describe_shows_windows(self):
        text = FAULTS.describe("ost-degrade")
        assert "disturbance window(s)" in text
        assert "factor" in text

    def test_coerce_parses_cli_strings(self):
        coerced = FAULTS.coerce(
            "net-delay", {"factor": "3.5", "partition": "true"}
        )
        assert coerced == {"factor": 3.5, "partition": True}

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="ost-crash"):
            FAULTS.get("osd-crash")


class TestFaultSpec:
    def test_params_canonicalized_sorted(self):
        a = FaultSpec("ost-crash", {"start_s": 1.0, "ost": 1})
        b = FaultSpec("ost-crash", {"ost": 1, "start_s": 1.0})
        assert a == b
        assert a.params == (("ost", 1), ("start_s", 1.0))
        assert a.kwargs == {"ost": 1, "start_s": 1.0}

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultSpec("not-a-fault")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            FaultSpec("ost-crash", {"blast_radius": 3})

    def test_hashable_and_picklable(self):
        spec = FaultSpec("client-churn", {"leaves": 2, "seed": 7})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_build_materializes_injector(self):
        injector = FaultSpec("ost-crash", {"start_s": 0.1}).build()
        assert injector.windows() == ((0.1, 0.6),)


class TestWithFault:
    def test_appends_fault_to_spec(self):
        spec = REGISTRY.build("quickstart").with_fault(
            "ost-crash", {"start_s": 0.3}
        )
        assert len(spec.faults) == 1
        assert spec.faults[0].name == "ost-crash"
        assert spec.faults[0].kwargs == {"start_s": 0.3}

    def test_faults_accumulate(self):
        spec = (
            REGISTRY.build("quickstart")
            .with_fault("ost-crash")
            .with_fault("net-delay")
        )
        assert [f.name for f in spec.faults] == ["ost-crash", "net-delay"]

    def test_seed_auto_injected_for_seeded_faults(self):
        spec = REGISTRY.build("quickstart").with_run(seed=99)
        churned = spec.with_fault("client-churn")
        assert churned.faults[0].kwargs["seed"] == 99

    def test_pinned_seed_wins(self):
        spec = REGISTRY.build("quickstart").with_run(seed=99)
        churned = spec.with_fault("client-churn", {"seed": 5})
        assert churned.faults[0].kwargs["seed"] == 5

    def test_unseeded_faults_get_no_seed(self):
        spec = REGISTRY.build("quickstart").with_fault("ost-crash")
        assert "seed" not in spec.faults[0].kwargs

    def test_unknown_fault_name_rejected(self):
        with pytest.raises(ValueError, match="registered"):
            REGISTRY.build("quickstart").with_fault("nope")

    def test_describe_lists_faults(self):
        spec = REGISTRY.build("quickstart").with_fault(
            "ost-degrade", {"factor": 0.5}
        )
        assert "fault:    ost-degrade [factor=0.5]" in spec.describe()


class TestParameterValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_s"):
            FAULTS.build("ost-crash", start_s=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            FAULTS.build("ost-crash", duration_s=0.0)

    def test_nonpositive_degrade_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            FAULTS.build("ost-degrade", factor=0.0)

    def test_negative_churn_counts_rejected(self):
        with pytest.raises(ValueError, match="leaves"):
            FAULTS.build("client-churn", leaves=-1)
