"""Property-style invariants under randomized fault schedules.

For *every* registered mechanism we draw a handful of seeded random fault
schedules (via :class:`RngStreams` substreams — no raw ``random``, no
numpy) and assert that the mechanism's conservation invariants survive the
disturbance:

* every client finishes (crashed work is requeued, not lost);
* the borrowing ledger is balanced — ``records.total() == 0`` — for every
  AdapTBF controller in the cluster;
* every allocation round conserves the token budget exactly:
  ``sum(allocations) == total_tokens``.

These mirror the fault-free invariant tests in ``tests/core``; the point
here is that injected crashes, slowdowns and churn cannot corrupt them.
"""

import pytest

from repro.cluster.builder import build
from repro.cluster.experiment import execute
from repro.core.mechanism import MECHANISMS
from repro.scenarios import REGISTRY
from repro.sim.rng import RngStreams

SEEDS = (0, 1, 2)


def random_schedule(rng, *, churn_seed):
    """One to three fault specs with windows inside a ~0.25 s run."""
    faults = []
    for _ in range(rng.randint(1, 3)):
        name = rng.choice(["ost-crash", "ost-degrade", "net-delay", "client-churn"])
        params = {
            "start_s": round(rng.uniform(0.02, 0.12), 3),
            "duration_s": round(rng.uniform(0.02, 0.08), 3),
        }
        if name == "ost-degrade":
            params["factor"] = round(rng.uniform(0.1, 0.8), 2)
        elif name == "net-delay":
            params["factor"] = round(rng.uniform(1.0, 8.0), 2)
        elif name == "client-churn":
            params.update(leaves=rng.randint(0, 2), joins=rng.randint(0, 2))
            params["seed"] = churn_seed
        faults.append((name, params))
    return faults


def run_under_schedule(mechanism, seed):
    rng = RngStreams(seed).get_stdlib("fault-schedule")
    spec = REGISTRY.build(
        "quickstart",
        file_mib=16.0,
        procs=2,
        capacity_mib_s=256.0,
        mechanism=mechanism,
        duration=1.5,  # cap so churn joins cannot stall the run
    ).with_run(seed=seed)
    for name, params in random_schedule(rng, churn_seed=seed):
        spec = spec.with_fault(name, params)
    cluster = build(spec)
    result = execute(cluster)
    return cluster, result


@pytest.mark.parametrize("mechanism", sorted(MECHANISMS.names()))
@pytest.mark.parametrize("seed", SEEDS)
class TestFaultInvariants:
    def test_clients_finish_and_ledger_balances(self, mechanism, seed):
        cluster, result = run_under_schedule(mechanism, seed)
        assert result.clients_finished
        for controller in cluster.controllers:
            assert controller.algorithm.records.total() == 0

    def test_every_round_conserves_the_token_budget(self, mechanism, seed):
        cluster, _ = run_under_schedule(mechanism, seed)
        rounds = 0
        for handle in cluster.handles:
            history = handle.history
            if history is None:
                continue
            for round_ in history:
                allocated = sum(round_.result.allocations.values())
                assert allocated == round_.result.total_tokens
                rounds += 1
        if mechanism.startswith("adaptbf"):
            assert rounds > 0  # the control loop actually ran


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = random_schedule(RngStreams(7).get_stdlib("fault-schedule"), churn_seed=7)
        b = random_schedule(RngStreams(7).get_stdlib("fault-schedule"), churn_seed=7)
        assert a == b

    def test_different_seeds_draw_different_schedules(self):
        draws = {
            tuple(
                (n, tuple(sorted(p.items())))
                for n, p in random_schedule(
                    RngStreams(s).get_stdlib("fault-schedule"), churn_seed=s
                )
            )
            for s in range(8)
        }
        assert len(draws) > 1
