"""Behavioural tests for the built-in injectors on real built clusters.

Each test builds a small quickstart-derived cluster, attaches one fault
through the spec axis (exactly the path ``run --fault`` and campaign cells
take) and asserts the disturbance both *happened* and *healed*: service
resumes, ledgers balance, nothing leaks.
"""

import pytest

from repro.cluster.builder import build
from repro.cluster.experiment import execute
from repro.scenarios import REGISTRY


def small_spec(**overrides):
    """A fast quickstart: 64 MiB total at 256 MiB/s (~0.25 s simulated)."""
    params = dict(file_mib=16.0, procs=2, capacity_mib_s=256.0)
    params.update(overrides)
    return REGISTRY.build("quickstart", **params)


WINDOW = {"start_s": 0.05, "duration_s": 0.1}


class TestOstCrash:
    def test_crash_drops_and_requeues_then_recovers(self):
        spec = small_spec().with_fault("ost-crash", WINDOW)
        cluster = build(spec)
        result = execute(cluster)
        assert result.clients_finished
        assert cluster.rpcs_dropped > 0
        assert cluster.rpcs_retried >= cluster.rpcs_dropped
        oss = cluster.osses[0]
        assert not oss.offline
        handle = cluster.fault_handles[0]
        assert handle.injections == 2  # crash + recover

    def test_no_bytes_lost_or_duplicated(self):
        """Aborted transfers discard partial bytes; requeues redo them —
        the OST serves exactly the offered volume, once."""
        spec = small_spec().with_fault("ost-crash", WINDOW)
        cluster = build(spec)
        execute(cluster)
        offered = sum(
            p.pattern.total_bytes_hint()
            for j in spec.jobs
            for p in j.processes
        )
        assert cluster.osts[0].bytes_served == offered

    def test_ledger_balanced_after_recovery(self):
        spec = small_spec().with_fault("ost-crash", WINDOW)
        cluster = build(spec)
        execute(cluster)
        for controller in cluster.controllers:
            assert controller.algorithm.records.total() == 0

    def test_crash_while_offline_rejected(self):
        spec = small_spec().with_fault("ost-crash", WINDOW)
        cluster = build(spec)
        oss = cluster.osses[0]
        oss.crash()
        with pytest.raises(RuntimeError):
            oss.crash()
        oss.recover()
        with pytest.raises(RuntimeError):
            oss.recover()

    def test_multi_ost_crash_targets_one_stack(self):
        spec = REGISTRY.build(
            "multiost", n_osts=2, file_mib=16.0, procs=2
        ).with_fault("ost-crash", dict(WINDOW, ost=1))
        cluster = build(spec)
        result = execute(cluster)
        assert result.clients_finished
        assert cluster.osses[0].rpcs_dropped == 0
        assert cluster.osses[1].rpcs_dropped > 0

    def test_bad_ost_index_fails_at_build(self):
        spec = small_spec().with_fault("ost-crash", dict(WINDOW, ost=5))
        with pytest.raises(ValueError, match="OST index 5"):
            build(spec)


class TestOstDegrade:
    def test_capacity_restored_and_run_slower(self):
        healthy = execute(build(small_spec())).duration_s
        spec = small_spec().with_fault(
            "ost-degrade", dict(WINDOW, factor=0.1)
        )
        cluster = build(spec)
        result = execute(cluster)
        assert result.clients_finished
        assert cluster.osts[0].capacity_bps == 256.0 * (1 << 20)
        assert result.duration_s > healthy
        assert cluster.fault_handles[0].injections == 2


class TestNetDelay:
    def test_latency_inflated_then_restored(self):
        spec = REGISTRY.build(
            "quickstart",
            file_mib=16.0,
            procs=2,
            capacity_mib_s=256.0,
        ).with_fault("net-delay", dict(WINDOW, factor=1.0, extra_s=0.05))
        cluster = build(spec)
        baseline = cluster.network.latency_s
        result = execute(cluster)
        assert result.clients_finished
        assert cluster.network.latency_s == baseline

    def test_partition_holds_then_floods(self):
        spec = small_spec().with_fault(
            "net-delay", dict(WINDOW, partition=True)
        )
        cluster = build(spec)
        result = execute(cluster)
        assert result.clients_finished
        assert not cluster.network.partitioned
        assert cluster.network.rpcs_held > 0

    def test_set_latency_validation(self):
        cluster = build(small_spec())
        with pytest.raises(ValueError):
            cluster.network.set_latency(-0.1)


class TestClientChurn:
    def test_leaves_and_joins(self):
        spec = small_spec(duration=2.0).with_fault(
            "client-churn",
            dict(WINDOW, leaves=2, joins=2, job="science"),
        )
        cluster = build(spec)
        initial = len(cluster.clients)
        result = execute(cluster)
        assert result.clients_finished  # killed clients count as finished
        assert len(cluster.clients) == initial + 2
        joined = [c.io.client_id for c in cluster.clients[initial:]]
        assert joined == ["science.join0", "science.join1"]
        assert cluster.fault_handles[0].injections == 4

    def test_victims_deterministic_per_seed(self):
        def victims(seed):
            spec = small_spec(duration=1.0).with_run(seed=seed).with_fault(
                "client-churn", dict(WINDOW, leaves=2, joins=0)
            )
            cluster = build(spec)
            execute(cluster)
            return [
                c.io.client_id
                for c in cluster.clients
                if c.process.triggered and not c.finished
            ]

        assert victims(1) == victims(1)

    def test_unknown_job_rejected_at_build(self):
        spec = small_spec().with_fault(
            "client-churn", dict(WINDOW, job="ghost")
        )
        with pytest.raises(ValueError, match="unknown job"):
            build(spec)


class TestLifecycle:
    def test_teardown_before_window_cancels_injection(self):
        spec = small_spec().with_fault("ost-crash", WINDOW)
        cluster = build(spec)
        cluster.fault_handles[0].teardown()
        result = execute(cluster)
        assert result.clients_finished
        assert cluster.fault_handles[0].injections == 0
        assert cluster.rpcs_dropped == 0

    def test_fault_window_is_union(self):
        spec = (
            small_spec()
            .with_fault("ost-crash", {"start_s": 0.2, "duration_s": 0.1})
            .with_fault("net-delay", {"start_s": 0.05, "duration_s": 0.05})
        )
        cluster = build(spec)
        assert cluster.fault_window() == pytest.approx((0.05, 0.3))
        cluster.teardown()

    def test_no_faults_no_window(self):
        cluster = build(small_spec())
        assert cluster.fault_window() is None
        assert cluster.fault_handles == []
