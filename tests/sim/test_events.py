"""Unit tests for composite events and RNG streams."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, RngStreams


def test_any_of_triggers_on_first():
    env = Environment()
    t1 = env.timeout(1.0, value="fast")
    t2 = env.timeout(5.0, value="slow")
    log = []

    def body(env):
        result = yield AnyOf(env, [t1, t2])
        log.append((env.now, [result[e] for e in result]))

    env.process(body(env))
    env.run()
    assert log == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    t1 = env.timeout(1.0, value="a")
    t2 = env.timeout(5.0, value="b")
    log = []

    def body(env):
        result = yield AllOf(env, [t1, t2])
        log.append((env.now, sorted(result[e] for e in result)))

    env.process(body(env))
    env.run()
    assert log == [(5.0, ["a", "b"])]


def test_empty_all_of_succeeds_immediately():
    env = Environment()
    log = []

    def body(env):
        result = yield AllOf(env, [])
        log.append((env.now, len(result)))

    env.process(body(env))
    env.run()
    assert log == [(0.0, 0)]


def test_condition_value_mapping_semantics():
    env = Environment()
    t1 = env.timeout(1.0, value="x")
    cond = AnyOf(env, [t1])
    env.run()
    value = cond.value
    assert t1 in value
    assert value[t1] == "x"
    assert len(value) == 1
    assert value.todict() == {t1: "x"}
    with pytest.raises(KeyError):
        _ = value[env.event()]


def test_condition_rejects_foreign_events():
    env_a, env_b = Environment(), Environment()
    foreign = env_b.timeout(1.0)
    with pytest.raises(ValueError):
        AnyOf(env_a, [foreign])


def test_condition_failure_propagates():
    env = Environment()
    bad = env.event()
    good = env.timeout(5.0)
    cond = AllOf(env, [bad, good])
    cond.defused()
    bad.fail(ValueError("inner"))
    env.run()
    assert not cond.ok
    assert isinstance(cond.value, ValueError)


def test_env_convenience_constructors():
    env = Environment()
    t1, t2 = env.timeout(1.0), env.timeout(2.0)
    assert type(env.any_of([t1, t2])).__name__ == "AnyOf"
    assert type(env.all_of([t1, t2])).__name__ == "AllOf"


@pytest.mark.skipif(
    __import__("repro.sim.rng", fromlist=["np"]).np is None,
    reason="drawing from RngStreams requires numpy (repro[fast])",
)
class TestRngStreams:
    def test_same_seed_same_streams(self):
        a = RngStreams(7).get("x").random(5)
        b = RngStreams(7).get("x").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        s = RngStreams(7)
        assert not (s.get("x").random(5) == s.get("y").random(5)).all()

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random(5)
        b = RngStreams(2).get("x").random(5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        s = RngStreams(7)
        assert s.get("x") is s.get("x")

    def test_spawn_namespaces_are_reproducible(self):
        a = RngStreams(7).spawn("ns").get("x").random(3)
        b = RngStreams(7).spawn("ns").get("x").random(3)
        assert (a == b).all()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("abc")  # type: ignore[arg-type]
