"""Edge cases of the optimized dispatch loop: lazy cancellation, FIFO ties,
free-list hygiene, and the determinism invariant on a full scenario."""

import pytest

from repro.sim import Environment
from repro.sim.events import Event, FirstOf, Timeout


class TestLazyCancellation:
    def test_cancelled_event_at_heap_top_is_skipped(self):
        env = Environment()
        first = env.timeout(1.0)
        fired = []
        first.add_callback(lambda e: fired.append("cancelled-one"))
        env.timeout(2.0).add_callback(lambda e: fired.append("survivor"))
        first.cancel()
        env.run()
        assert fired == ["survivor"]
        assert env.now == 2.0

    def test_cancelled_event_does_not_advance_clock(self):
        env = Environment()
        env.timeout(5.0).cancel()
        env.timeout(1.0)
        env.run()
        # The cancelled 5.0 entry is discarded without touching the clock.
        assert env.now == 1.0

    def test_cancel_skips_do_not_count_as_dispatched(self):
        env = Environment()
        env.timeout(1.0).cancel()
        env.timeout(2.0)
        env.run()
        assert env.dispatched == 1
        assert env.scheduled == 2

    def test_step_skips_cancelled_entries(self):
        env = Environment()
        env.timeout(0.5).cancel()
        env.timeout(1.0)
        env.step()  # must dispatch the live event, not the carcass
        assert env.now == 1.0

    def test_step_raises_when_only_cancelled_entries_remain(self):
        env = Environment()
        env.timeout(0.5).cancel()
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            env.step()

    def test_cancel_after_processing_raises(self):
        env = Environment()
        timeout = env.timeout(0.1)
        env.run()
        with pytest.raises(RuntimeError):
            timeout.cancel()

    def test_succeed_after_cancel_raises(self):
        env = Environment()
        event = env.event()
        event.cancel()
        with pytest.raises(RuntimeError):
            event.succeed(1)

    def test_cancelled_property(self):
        env = Environment()
        timeout = env.timeout(1.0)
        assert not timeout.cancelled
        timeout.cancel()
        assert timeout.cancelled


class TestFifoTieOrder:
    def test_identical_time_and_priority_preserve_seq_order(self):
        env = Environment()
        order = []
        for tag in range(8):
            env.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        env.run()
        assert order == list(range(8))

    def test_fifo_order_survives_free_list_reuse(self):
        env = Environment()
        # Populate the free list with recycled timeouts first.
        for _ in range(4):
            env.timeout(0.001)
        env.run()
        assert env._free_timeouts  # recycled carcasses available
        order = []
        for tag in range(6):
            env.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        env.run()
        assert order == list(range(6))


class TestFreeListHygiene:
    def test_recycled_timeout_starts_with_no_callbacks(self):
        env = Environment()
        stale_calls = []
        first = env.timeout(0.1)
        first.add_callback(lambda e: stale_calls.append("first"))
        first_id = id(first)
        del first  # recycling requires that nobody holds a reference
        env.run()
        assert stale_calls == ["first"]
        assert len(env._free_timeouts) == 1
        # The recycled instance must come back callback-free: the first
        # run's callback must not fire again.
        second = env.timeout(0.1)
        assert id(second) == first_id  # the free list actually recycled it
        assert second.callbacks == []
        env.run()
        assert stale_calls == ["first"]

    def test_referenced_timeout_is_never_recycled(self):
        env = Environment()
        held = env.timeout(0.1, value="keep")
        env.run()
        # We still hold `held`, so the engine must not have recycled it.
        assert held not in env._free_timeouts
        fresh = env.timeout(0.2)
        assert fresh is not held
        assert held.value == "keep"

    def test_reuse_can_be_disabled(self):
        env = Environment(reuse_timeouts=False)
        timeout = env.timeout(0.1)
        env.run()
        assert env._free_timeouts == []
        assert env.timeout(0.1) is not timeout

    def test_recycled_value_is_reset(self):
        env = Environment()
        env.timeout(0.1, value="old-value")
        env.run()
        second = env.timeout(0.1)  # recycled, value defaults to None
        env.run()
        assert second.value is None


class TestFirstOf:
    def test_delivers_the_winning_event(self):
        env = Environment()
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(2.0, value="slow")
        race = FirstOf(env, (fast, slow))
        env.run(until=race)
        assert race.value is fast

    def test_already_processed_component_wins_immediately(self):
        env = Environment()
        done = env.timeout(0.1)
        env.run()
        race = FirstOf(env, (done, env.timeout(5.0)))
        env.run(until=race)
        assert race.value is done
        assert env.now < 5.0

    def test_failure_propagates(self):
        env = Environment()
        failing = Event(env)
        race = FirstOf(env, (failing, env.timeout(5.0)))
        failing.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run(until=race)

    def test_loser_cancel_pattern(self):
        """The OSS idle-wait pattern: race a timer against a broadcast and
        retire the loser lazily."""
        env = Environment()
        arrival = Event(env)
        timer = env.timeout(10.0)
        race = FirstOf(env, (timer, arrival))
        arrival.succeed()
        env.run(until=race)
        assert race.value is arrival
        assert timer.callbacks is not None
        timer.cancel()
        env.run()
        assert env.now < 10.0  # the cancelled timer never dispatched


class _TraceRecorder:
    """Records (time, priority, seq, type-name) per dispatched event."""

    def __init__(self):
        self.rows = []

    def __call__(self, when, priority, seq, event):
        self.rows.append((when, priority, seq, type(event).__name__))


def _quickstart_trace(reuse_timeouts: bool):
    from repro.cluster.builder import build
    from repro.cluster.experiment import execute
    from repro.scenarios import REGISTRY

    env = Environment(reuse_timeouts=reuse_timeouts)
    trace = _TraceRecorder()
    env.trace = trace
    spec = REGISTRY.build("quickstart", file_mib=24.0, procs=2)
    execute(build(spec, env=env))
    return trace.rows


class TestDeterminism:
    def test_quickstart_trace_is_reproducible(self):
        assert _quickstart_trace(True) == _quickstart_trace(True)

    def test_free_list_reuse_does_not_change_the_event_trace(self):
        """The optimization toggle must be unobservable: identical
        (time, priority, seq) dispatch order with reuse on and off."""
        assert _quickstart_trace(True) == _quickstart_trace(False)

    def test_trace_hook_sees_every_dispatch(self):
        env = Environment()
        trace = _TraceRecorder()
        env.trace = trace
        for _ in range(5):
            env.timeout(0.5)
        env.run()
        assert len(trace.rows) == 5
        assert env.dispatched == 5
