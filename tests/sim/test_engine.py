"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=5.5).now == 5.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_with_no_events_settles_clock():
    env = Environment()
    env.run(until=7.0)
    assert env.now == 7.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (5.0, 1.0, 3.0):
        env.timeout(delay).add_callback(lambda e, d=delay: order.append(d))
    env.run()
    assert order == [1.0, 3.0, 5.0]


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []
    for tag in ("a", "b", "c"):
        env.timeout(2.0).add_callback(lambda e, t=tag: order.append(t))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(2.5)
    env.timeout(1.5)
    assert env.peek() == 1.5
    env.run()
    assert env.peek() == float("inf")


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed("payload")
    env.run()
    assert seen == ["payload"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_event_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    env = Environment()
    env.event().fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_does_not_raise():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defused()
    env.run()  # must not raise


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_callback_after_processed_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    env.run()
    with pytest.raises(RuntimeError):
        ev.add_callback(lambda e: None)


def test_run_until_event_returns_its_value():
    env = Environment()

    def producer(env):
        yield env.timeout(2.0)
        return 99

    proc = env.process(producer(env))
    assert env.run(until=proc) == 99
    assert env.now == 2.0


def test_run_until_event_starved_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)
