"""Unit tests for the cross-backend trace differ (pure comparison logic).

The heavyweight end-to-end use — running real scenarios under both
backends — lives in ``test_backends.py``; here the divergence detection
and report formatting are pinned on hand-built streams.
"""

import pytest

from repro.sim.tracediff import (
    DiffReport,
    Divergence,
    diff_backends,
    first_divergence,
    format_report,
    trace_scenario,
)


def entry(t, seq, name="Timeout"):
    return (t, 1, seq, name)


class TestFirstDivergence:
    def test_equal_streams(self):
        stream = [entry(0.1, 1), entry(0.2, 2)]
        assert first_divergence(stream, list(stream)) is None

    def test_empty_streams_are_equal(self):
        assert first_divergence([], []) is None

    def test_mismatched_entry_reported_at_index(self):
        left = [entry(0.1, 1), entry(0.2, 2), entry(0.3, 3)]
        right = [entry(0.1, 1), entry(0.2, 2, "Event"), entry(0.3, 3)]
        div = first_divergence(left, right)
        assert div == Divergence(index=1, left=left[1], right=right[1])

    def test_prefix_diverges_at_shorter_length(self):
        left = [entry(0.1, 1)]
        right = [entry(0.1, 1), entry(0.2, 2)]
        div = first_divergence(left, right)
        assert div == Divergence(index=1, left=None, right=right[1])

    def test_prefix_other_direction(self):
        left = [entry(0.1, 1), entry(0.2, 2)]
        div = first_divergence(left, [entry(0.1, 1)])
        assert div == Divergence(index=1, left=left[1], right=None)


class TestFormatReport:
    def _report(self, divergence, counts=(3, 3), context=((), ())):
        return DiffReport(
            scenario="demo",
            backends=("heap", "array"),
            counts=counts,
            divergence=divergence,
            context=context,
        )

    def test_clean_report(self):
        report = self._report(None)
        assert report.equal
        text = format_report(report)
        assert "identical streams" in text
        assert "demo" in text

    def test_divergent_report_names_index_and_sides(self):
        div = Divergence(index=1, left=entry(0.2, 2), right=entry(0.3, 2))
        report = self._report(
            div, counts=(3, 4), context=((entry(0.1, 1),), (entry(0.1, 1),))
        )
        assert not report.equal
        text = format_report(report)
        assert "DIVERGE at dispatch #1" in text
        assert "stream length 3" in text
        assert "stream length 4" in text
        assert "context (heap)" in text
        assert "context (array)" in text


class TestTraceScenario:
    def test_rejects_non_scenario(self):
        with pytest.raises(TypeError, match="name or ScenarioSpec"):
            trace_scenario(42, "heap")

    def test_spec_backend_is_overridden(self):
        # A spec pinned to one backend still runs under the requested one;
        # identical streams from the two calls double as a parity check.
        from repro.scenarios import REGISTRY

        spec = REGISTRY.build("quickstart").with_run(
            duration_s=0.2, backend="array"
        )
        left = trace_scenario(spec, "heap")
        right = trace_scenario(spec, "array")
        assert left and left == right

    def test_diff_backends_reports_scenario_name(self):
        from repro.scenarios import REGISTRY

        spec = REGISTRY.build("quickstart").with_run(duration_s=0.2)
        report = diff_backends(spec)
        assert report.scenario == "quickstart"
        assert report.backends == ("heap", "array")
        assert report.equal
        assert report.counts[0] == report.counts[1] > 0
