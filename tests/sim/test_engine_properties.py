"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=100))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).add_callback(lambda e: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
    )
)
@settings(max_examples=100, deadline=None)
def test_clock_settles_on_last_event(delays):
    env = Environment()
    for delay in delays:
        env.timeout(delay)
    env.run()
    assert env.now == max(delays)


@given(
    spec=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),  # start offset
            st.lists(
                st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=5
            ),  # successive waits
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=80, deadline=None)
def test_interleaved_processes_observe_monotone_time(spec):
    env = Environment()
    observations = []

    def body(env, start, waits):
        yield env.timeout(start)
        for wait in waits:
            observations.append(env.now)
            yield env.timeout(wait)
        observations.append(env.now)

    for start, waits in spec:
        env.process(body(env, start, waits))
    env.run()
    # Global observation order equals chronological order.
    assert observations == sorted(observations)
    # Each process observed len(waits)+1 instants.
    assert len(observations) == sum(len(w) + 1 for _, w in spec)


@given(
    n_waiters=st.integers(min_value=1, max_value=20),
    trigger_delay=st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_broadcast_event_wakes_every_waiter_once(n_waiters, trigger_delay):
    env = Environment()
    signal = env.event()
    woken = []

    def waiter(env, index):
        yield signal
        woken.append(index)

    for index in range(n_waiters):
        env.process(waiter(env, index))
    env.timeout(trigger_delay).add_callback(lambda e: signal.succeed())
    env.run()
    assert sorted(woken) == list(range(n_waiters))
