"""The kernel-backend seam: registry, selection, and cross-backend parity.

The backends promise one thing above all: for a given workload, every
backend dispatches the exact same ``(time, priority, seq)`` stream.  These
tests pin that promise at three levels — pure-engine micro workloads with
the ``trace`` hook, full scenarios through :mod:`repro.sim.tracediff`, and
the array calendar's own edge cases (two-lane ordering, lazy cancellation,
batched timeout insertion).
"""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.backends import (
    ArrayBackend,
    HeapBackend,
    KernelBackend,
    BACKENDS,
    available_backends,
    register_backend,
    resolve_backend,
)

ALL_BACKENDS = available_backends()


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_available_backends_lists_default_first(self):
        names = available_backends()
        assert names[0] == "heap"
        assert "array" in names

    def test_resolve_by_name(self):
        assert resolve_backend("heap") is HeapBackend
        assert resolve_backend("array") is ArrayBackend

    def test_resolve_none_gives_default(self):
        assert resolve_backend(None) is HeapBackend

    def test_resolve_class_passthrough(self):
        assert resolve_backend(ArrayBackend) is ArrayBackend

    def test_resolve_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="heap"):
            resolve_backend("btree")

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("heap", HeapBackend)

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend("bogus", dict)

    def test_register_and_resolve_custom_backend(self):
        class Custom(HeapBackend):
            name = "custom-test-kernel"

        register_backend("custom-test-kernel", Custom)
        try:
            assert resolve_backend("custom-test-kernel") is Custom
            env = Environment(backend="custom-test-kernel")
            assert isinstance(env.kernel, Custom)
        finally:
            del BACKENDS["custom-test-kernel"]


# -- selection ---------------------------------------------------------------


class TestSelection:
    def test_default_backend_is_heap(self):
        env = Environment()
        assert env.backend == "heap"
        assert isinstance(env.kernel, HeapBackend)

    def test_array_backend_selected_by_name(self):
        env = Environment(backend="array")
        assert env.backend == "array"
        assert isinstance(env.kernel, ArrayBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            Environment(backend="btree")

    def test_repr_names_the_backend(self):
        assert "array" in repr(Environment(backend="array"))

    def test_kernel_base_is_abstract(self):
        env = Environment()
        base = KernelBackend(env)
        for call in (base.peek, base.pending, base.step):
            with pytest.raises(NotImplementedError):
                call()


# -- behavioural parity on pure-engine workloads -----------------------------


def _traced_run(backend: str, setup) -> list:
    """Run ``setup(env)`` to exhaustion and return the dispatch stream."""
    env = Environment(backend=backend)
    entries = []
    env.trace = lambda when, priority, seq, event: entries.append(
        (when, priority, seq, type(event).__name__)
    )
    setup(env)
    env.run()
    return entries


def _handoff_mesh(env):
    """Succeed-chains + timers: exercises both array lanes heavily."""

    def producer(mailbox):
        for k in range(40):
            yield env.timeout(0.001 + (k % 3) * 0.0005)
            mailbox.pop().succeed(k)

    def consumer(mailbox):
        for _ in range(40):
            box = env.event()
            mailbox.append(box)
            yield box

    for _ in range(10):
        mailbox = []
        env.process(consumer(mailbox))
        env.process(producer(mailbox))


def _condition_fan(env):
    def waiter(i):
        for _ in range(12):
            events = [env.timeout(0.001 + (j % 3) * 0.0007) for j in range(6)]
            yield env.any_of(events)
            yield env.all_of(events)

    for i in range(8):
        env.process(waiter(i))


@pytest.mark.parametrize("setup", [_handoff_mesh, _condition_fan])
def test_dispatch_streams_identical_across_backends(setup):
    streams = {b: _traced_run(b, setup) for b in ALL_BACKENDS}
    reference = streams["heap"]
    assert len(reference) > 100
    for backend, stream in streams.items():
        assert stream == reference, f"{backend} diverged from heap"


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestBackendBehaviour:
    def test_same_time_events_fire_in_creation_order(self, backend):
        env = Environment(backend=backend)
        order = []
        for tag in ("a", "b", "c"):
            env.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]

    def test_succeed_now_fires_before_later_timeout(self, backend):
        env = Environment(backend=backend)
        order = []
        env.timeout(0.5).add_callback(lambda e: order.append("later"))
        event = env.event()
        event.add_callback(lambda e: order.append("now"))
        event.succeed()
        env.run()
        assert order == ["now", "later"]

    def test_run_until_time_settles_clock(self, backend):
        env = Environment(backend=backend)
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_time_with_empty_calendar(self, backend):
        env = Environment(backend=backend)
        env.run(until=7.0)
        assert env.now == 7.0

    def test_run_out_of_events_before_condition_raises(self, backend):
        env = Environment(backend=backend)
        with pytest.raises(SimulationError, match="ran out of events"):
            env.run(until=env.event())

    def test_step_on_empty_calendar_raises(self, backend):
        env = Environment(backend=backend)
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_and_step_across_lanes(self, backend):
        env = Environment(backend=backend)
        order = []
        env.timeout(2.0).add_callback(lambda e: order.append("far"))
        event = env.event()
        event.add_callback(lambda e: order.append("now"))
        event.succeed()  # at-now entry (the array backend's FIFO lane)
        assert env.peek() == 0.0
        env.step()
        assert order == ["now"]
        assert env.peek() == 2.0
        env.step()
        assert order == ["now", "far"]

    def test_lazy_cancellation_skipped_in_calendar(self, backend):
        env = Environment(backend=backend)
        fired = []
        first = env.timeout(1.0)
        first.add_callback(lambda e: fired.append("cancelled"))
        env.timeout(2.0).add_callback(lambda e: fired.append("kept"))
        first.cancel()
        env.run()
        assert fired == ["kept"]
        assert env.now == 2.0

    def test_cancelled_at_now_entry_skipped(self, backend):
        env = Environment(backend=backend)
        fired = []
        event = env.event()
        event.add_callback(lambda e: fired.append("dead"))
        event.succeed()
        event.cancel()
        env.timeout(0.5).add_callback(lambda e: fired.append("live"))
        env.run()
        assert fired == ["live"]

    def test_reuse_timeouts_recycles_objects(self, backend):
        env = Environment(backend=backend, reuse_timeouts=True)

        def churner():
            for _ in range(50):
                yield env.timeout(0.01)

        env.process(churner())
        env.run()
        assert env._free_timeouts  # the free list actually filled

    def test_reuse_disabled_matches_stream(self, backend):
        plain = _traced_run(backend, _handoff_mesh)
        env = Environment(backend=backend, reuse_timeouts=False)
        entries = []
        env.trace = lambda when, priority, seq, event: entries.append(
            (when, priority, seq, type(event).__name__)
        )
        _handoff_mesh(env)
        env.run()
        assert entries == plain


# -- batched timeout insertion ----------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("n", [3, 64])  # below and above the vector threshold
class TestBatchTimeouts:
    def test_batch_matches_loop_semantics(self, backend, n):
        delays = [0.001 * ((i * 7) % 13 + 1) for i in range(n)]

        def batch_setup(env):
            for timeout in env.timeouts(delays, value="x"):
                timeout.add_callback(lambda e: None)

        def loop_setup(env):
            for delay in delays:
                env.timeout(delay, "x").add_callback(lambda e: None)

        assert _traced_run(backend, batch_setup) == _traced_run(
            backend, loop_setup
        )

    def test_batch_preserves_creation_order_on_ties(self, backend, n):
        env = Environment(backend=backend)
        order = []
        timeouts = env.timeouts([0.5] * n)
        for i, timeout in enumerate(timeouts):
            timeout.add_callback(lambda e, i=i: order.append(i))
        env.run()
        assert order == list(range(n))
        assert [t.delay for t in timeouts] == [0.5] * n

    def test_negative_delay_rejected(self, backend, n):
        env = Environment(backend=backend)
        delays = [0.1] * (n - 1) + [-0.1]
        with pytest.raises(ValueError, match="negative timeout delay"):
            env.timeouts(delays)


# -- full-scenario parity (the tracediff contract) ---------------------------


@pytest.mark.parametrize(
    "scenario, duration",
    [("quickstart", 1.0), ("multiost", 0.5), ("burst-storm", 0.5)],
)
def test_scenarios_dispatch_identical_streams(scenario, duration):
    from repro.scenarios import REGISTRY
    from repro.sim.tracediff import diff_backends, format_report

    spec = REGISTRY.build(scenario).with_run(duration_s=duration)
    report = diff_backends(spec)
    assert report.equal, format_report(report)
    assert report.counts[0] > 1000  # the run actually did work
