"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_runs_to_completion():
    env = Environment()
    log = []

    def body(env):
        log.append(env.now)
        yield env.timeout(1.0)
        log.append(env.now)

    env.process(body(env))
    env.run()
    assert log == [0.0, 1.0]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_return_value_propagates():
    env = Environment()

    def body(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(body(env))
    env.run()
    assert proc.value == "done"


def test_processes_can_wait_on_each_other():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.0)
        return 7

    def parent(env):
        value = yield env.process(child(env))
        log.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert log == [(2.0, 7)]


def test_yielding_non_event_fails_process():
    env = Environment()

    def body(env):
        yield 42

    env.process(body(env))
    with pytest.raises(TypeError):
        env.run()


def test_exception_in_body_propagates():
    env = Environment()

    def body(env):
        yield env.timeout(1.0)
        raise RuntimeError("kaput")

    env.process(body(env))
    with pytest.raises(RuntimeError, match="kaput"):
        env.run()


def test_waiting_on_already_processed_event():
    env = Environment()
    done = env.event()
    done.succeed("early")
    log = []

    def body(env):
        yield env.timeout(1.0)
        value = yield done  # processed long ago; must resume immediately
        log.append((env.now, value))

    env.process(body(env))
    env.run()
    assert log == [(1.0, "early")]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(env, target):
        yield env.timeout(3.0)
        target.interrupt("budget exceeded")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [(3.0, "budget exceeded")]


def test_interrupt_then_continue_waiting():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [6.0]


def test_interrupting_finished_process_raises():
    env = Environment()

    def body(env):
        yield env.timeout(1.0)

    proc = env.process(body(env))
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_unhandled_interrupt_fails_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100.0)

    def attacker(env, target):
        yield env.timeout(1.0)
        target.interrupt("die")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    with pytest.raises(Interrupt):
        env.run()


def test_is_alive_reflects_state():
    env = Environment()

    def body(env):
        yield env.timeout(2.0)

    proc = env.process(body(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def body(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)

    proc = env.process(body(env))
    env.run()
    assert seen == [proc]
    assert env.active_process is None
