"""Tests for the campaign executor: serial fallback, fan-out, reduction."""

import pytest

from repro.campaigns import (
    CampaignSummary,
    ParameterAxis,
    run_campaign,
    run_cell,
)
from repro.campaigns.aggregate import percentile
from repro.scenarios import REGISTRY

# The shared two-cell quickstart sweep comes from the package conftest's
# session-scoped ``tiny_campaign`` factory fixture.


class TestSerialExecution:
    def test_one_outcome_per_cell_in_index_order(self, tiny_campaign):
        result = run_campaign(tiny_campaign(), jobs=1)
        assert [o.index for o in result.outcomes] == [0, 1]
        assert result.jobs == 1
        assert result.wall_s > 0
        assert all(o.wall_s > 0 for o in result.outcomes)

    def test_rows_carry_sweep_metrics(self, tiny_campaign):
        # Files sized to span several 100 ms allocation rounds, so the
        # controller/rule-churn columns have something to report.
        result = run_campaign(
            tiny_campaign(base_params={"file_mib": 48.0, "procs": 2}),
            jobs=1,
        )
        for outcome in result.outcomes:
            row = outcome.row
            assert row.scenario == "quickstart"
            assert row.mechanism == "adaptbf"
            assert row.aggregate_mib_s > 0
            assert 0 < row.fairness <= 1.0
            assert set(row.per_job_mib_s) == {"science", "hog"}
            assert row.rpcs_completed > 0
            assert (
                row.latency_p50_ms
                <= row.latency_p95_ms
                <= row.latency_p99_ms
            )
            assert row.rule_churn == (
                row.rules_created + row.rules_stopped + row.rate_changes
            )
            assert row.rounds_run > 0

    def test_jobs_must_be_positive(self, tiny_campaign):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign(tiny_campaign(), jobs=0)

    def test_progress_callback_sees_every_cell(self, tiny_campaign):
        seen = []
        run_campaign(
            tiny_campaign(),
            jobs=1,
            progress=lambda outcome, total: seen.append(
                (outcome.index, total)
            ),
        )
        assert seen == [(0, 2), (1, 2)]


class TestParallelExecution:
    def test_parallel_rows_identical_to_serial(self, tiny_campaign):
        campaign = tiny_campaign()
        serial = run_campaign(campaign, jobs=1)
        parallel = run_campaign(campaign, jobs=2)
        assert [o.index for o in parallel.outcomes] == [0, 1]
        assert parallel.rows == serial.rows
        assert [o.seed for o in parallel.outcomes] == [
            o.seed for o in serial.outcomes
        ]

    def test_more_workers_than_cells(self, tiny_campaign):
        result = run_campaign(tiny_campaign(), jobs=8)
        assert len(result.outcomes) == 2

    def test_invalid_cell_fails_fast_before_pool(self, tiny_campaign):
        # Cells resolve in the parent, so a bad axis value surfaces as a
        # spec validation error before any worker process spins up.
        bad = tiny_campaign(
            axes=(ParameterAxis("capacity_mib_s", (512.0, -1.0)),)
        )
        with pytest.raises(ValueError, match="capacity"):
            run_campaign(bad, jobs=2)


class TestReduction:
    def test_run_cell_matches_run_scenario_physics(self, tiny_campaign):
        """The sweep trim (no history, summary-only metrics) must not
        change the simulated numbers."""
        from repro.scenarios.runner import run_scenario

        campaign = tiny_campaign()
        cell = campaign.cells()[0]
        spec = campaign.resolve(cell)
        row = run_cell(spec)
        full = run_scenario(spec)
        assert row.aggregate_mib_s == full.summary.aggregate_mib_s
        assert row.per_job_mib_s == full.summary.per_job_mib_s
        assert row.duration_s == full.duration_s

    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 100) == 40.0
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 0)

    def test_baseline_mechanism_has_zero_churn(self, tiny_campaign):
        campaign = tiny_campaign(base_params={"mechanism": "none", "file_mib": 8.0})
        result = run_campaign(campaign, jobs=1)
        for outcome in result.outcomes:
            assert outcome.row.rule_churn == 0
            assert outcome.row.rounds_run == 0

    def test_summary_streams_across_outcomes(self, tiny_campaign):
        result = run_campaign(tiny_campaign(), jobs=1)
        summary = CampaignSummary()
        for outcome in result.outcomes:
            summary.add(outcome)
        assert summary.cells == 2
        assert summary.aggregate_min <= summary.aggregate_mean
        assert summary.aggregate_mean <= summary.aggregate_max
        best = result.outcomes[summary.best_cell_index]
        assert best.row.aggregate_mib_s == summary.aggregate_max
        assert summary.as_dict()["cells"] == 2


class TestFig9Port:
    def test_fig9_through_campaign_matches_direct_pipeline(self):
        """The ported Fig. 9 sweep must reproduce what a hand-rolled loop
        over run_scenario yields for the same intervals."""
        from repro.experiments import fig9
        from repro.scenarios.runner import run_scenario
        from repro.workloads.scenarios import ScenarioConfig

        cfg = ScenarioConfig(data_scale=1 / 16, time_scale=1 / 16)
        intervals = (0.1, 0.5)
        sweep = fig9.run(cfg, intervals_s=intervals)
        for paper_interval in intervals:
            interval = paper_interval * cfg.time_scale
            spec = REGISTRY.build(
                "recompensation",
                data_scale=cfg.data_scale,
                time_scale=cfg.time_scale,
                interval_s=interval,
            )
            direct = run_scenario(spec)
            assert sweep.aggregate(interval) == pytest.approx(
                direct.summary.aggregate_mib_s
            )

    def test_fig9_parallel_equals_serial(self):
        from repro.experiments import fig9
        from repro.workloads.scenarios import ScenarioConfig

        cfg = ScenarioConfig(data_scale=1 / 16, time_scale=1 / 16)
        serial = fig9.run(cfg, intervals_s=(0.1, 0.5), jobs=1)
        parallel = fig9.run(cfg, intervals_s=(0.1, 0.5), jobs=2)
        assert serial.aggregates == parallel.aggregates
