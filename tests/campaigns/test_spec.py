"""Tests for CampaignSpec: axis composition, seeds, resolution, identity."""

import pytest

from repro.campaigns import (
    CAMPAIGNS,
    CampaignSpec,
    ParameterAxis,
    derive_cell_seed,
)
from repro.scenarios.spec import ScenarioSpec


def grid_campaign(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="t",
        scenario="quickstart",
        axes=(
            ParameterAxis("capacity_mib_s", (512.0, 1024.0)),
            ParameterAxis("interval_s", (0.05, 0.1, 0.2)),
        ),
        base_params={"file_mib": 16.0},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestAxisComposition:
    def test_grid_is_cartesian_product(self):
        campaign = grid_campaign()
        cells = campaign.cells()
        assert campaign.n_cells == len(cells) == 6
        combos = {
            (c.params["capacity_mib_s"], c.params["interval_s"]) for c in cells
        }
        assert len(combos) == 6

    def test_grid_order_is_row_major_and_indexed(self):
        cells = grid_campaign().cells()
        assert [c.index for c in cells] == list(range(6))
        # First axis varies slowest (itertools.product order).
        assert [c.params["capacity_mib_s"] for c in cells[:3]] == [512.0] * 3

    def test_zip_advances_axes_in_lockstep(self):
        campaign = grid_campaign(
            mode="zip",
            axes=(
                ParameterAxis("capacity_mib_s", (512.0, 1024.0)),
                ParameterAxis("interval_s", (0.05, 0.1)),
            ),
        )
        cells = campaign.cells()
        assert campaign.n_cells == len(cells) == 2
        assert cells[0].params == {"capacity_mib_s": 512.0, "interval_s": 0.05}
        assert cells[1].params == {"capacity_mib_s": 1024.0, "interval_s": 0.1}

    def test_zip_rejects_ragged_axes(self):
        with pytest.raises(ValueError, match="equal-length"):
            grid_campaign(mode="zip")  # 2 vs 3 values

    def test_random_sampling_is_seed_deterministic(self):
        campaign = grid_campaign(mode="random", samples=5, seed=42)
        first = [c.params for c in campaign.cells()]
        again = [c.params for c in campaign.cells()]
        assert first == again
        other_seed = grid_campaign(mode="random", samples=5, seed=43)
        assert campaign.n_cells == other_seed.n_cells == 5
        # Not a guarantee in general, but for these axes/seeds the draws
        # differ — the stream really depends on the campaign seed.
        assert first != [c.params for c in other_seed.cells()]

    def test_random_requires_samples(self):
        with pytest.raises(ValueError, match="samples"):
            grid_campaign(mode="random")

    def test_samples_rejected_outside_random(self):
        with pytest.raises(ValueError, match="samples"):
            grid_campaign(samples=3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign mode"):
            grid_campaign(mode="sweep")

    def test_axis_base_param_overlap_rejected(self):
        with pytest.raises(ValueError, match="both as an axis"):
            grid_campaign(base_params={"interval_s": 0.1})

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            grid_campaign(
                axes=(
                    ParameterAxis("interval_s", (0.05,)),
                    ParameterAxis("interval_s", (0.1,)),
                )
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            ParameterAxis("x", ())


class TestCellSeeds:
    def test_seeds_derived_from_campaign_seed_and_index(self):
        cells = grid_campaign(seed=7).cells()
        assert [c.seed for c in cells] == [
            derive_cell_seed(7, i) for i in range(len(cells))
        ]

    def test_seeds_unique_across_cells(self):
        cells = grid_campaign().cells()
        assert len({c.seed for c in cells}) == len(cells)

    def test_derivation_is_stable(self):
        # Pinned: workers, re-runs and manifests must always agree.
        assert derive_cell_seed(0, 0) == derive_cell_seed(0, 0)
        assert derive_cell_seed(0, 0) != derive_cell_seed(0, 1)
        assert derive_cell_seed(0, 1) != derive_cell_seed(1, 1)


class TestResolution:
    def test_resolve_applies_base_and_axis_params(self):
        campaign = grid_campaign()
        cell = campaign.cells()[0]
        spec = campaign.resolve(cell)
        assert isinstance(spec, ScenarioSpec)
        assert spec.topology.capacity_mib_s == cell.params["capacity_mib_s"]
        assert spec.policy.interval_s == cell.params["interval_s"]
        # base_params: file_mib=16 -> 16 MiB per process file.
        assert spec.jobs[0].processes[0].pattern.total_bytes == 16 * (1 << 20)

    def test_resolve_stamps_cell_seed_into_run_spec(self):
        campaign = grid_campaign()
        cell = campaign.cells()[2]
        assert campaign.resolve(cell).run.seed == cell.seed

    def test_resolve_injects_seed_when_scenario_accepts_one(self):
        campaign = CampaignSpec(
            name="storm",
            scenario="burst-storm",
            axes=(ParameterAxis("n_jobs", (2, 3)),),
            base_params={"duration_s": 5.0},
        )
        for cell in campaign.cells():
            assert campaign.build_params(cell)["seed"] == cell.seed

    def test_pinned_seed_wins_over_derived(self):
        campaign = CampaignSpec(
            name="storm",
            scenario="burst-storm",
            axes=(ParameterAxis("n_jobs", (2, 3)),),
            base_params={"seed": 99},
        )
        for cell in campaign.cells():
            assert campaign.build_params(cell)["seed"] == 99

    def test_unknown_scenario_param_surfaces(self):
        campaign = grid_campaign(
            axes=(ParameterAxis("bogus_knob", (1, 2)),)
        )
        with pytest.raises(ValueError, match="no parameter"):
            campaign.resolve(campaign.cells()[0])

    def test_unknown_scenario_surfaces(self):
        campaign = grid_campaign(scenario="not-registered")
        with pytest.raises(KeyError, match="unknown scenario"):
            campaign.resolve(campaign.cells()[0])


class TestIdentity:
    def test_spec_hash_stable_and_content_sensitive(self):
        a, b = grid_campaign(), grid_campaign()
        assert a.spec_hash() == b.spec_hash()
        assert a.spec_hash() != grid_campaign(seed=1).spec_hash()

    def test_describe_lists_axes_and_cells(self):
        text = grid_campaign().describe()
        assert "campaign: t" in text
        assert "interval_s" in text
        assert "[0]" in text and "cells=6" in text

    def test_describe_exposes_spec_hash(self):
        campaign = grid_campaign()
        assert f"hash={campaign.spec_hash()}" in campaign.describe()

    def test_from_json_dict_round_trips_hash(self):
        campaign = grid_campaign()
        rebuilt = type(campaign).from_json_dict(campaign.to_json_dict())
        assert rebuilt == campaign
        assert rebuilt.spec_hash() == campaign.spec_hash()


class TestMechanismAxis:
    """`mechanism` sweeps apply to the resolved spec's policy."""

    def test_mechanism_axis_resolves_via_policy(self):
        campaign = CampaignSpec(
            name="t",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("none", "pid")),),
        )
        specs = [campaign.resolve(cell) for cell in campaign.cells()]
        assert [s.policy.mechanism for s in specs] == ["none", "pid"]

    def test_mechanism_recorded_in_build_params(self):
        campaign = CampaignSpec(
            name="t",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("static",)),),
        )
        (cell,) = campaign.cells()
        assert campaign.build_params(cell)["mechanism"] == "static"

    def test_unknown_mechanism_fails_at_resolve(self):
        campaign = CampaignSpec(
            name="t",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("bogus",)),),
        )
        with pytest.raises(ValueError, match="unknown mechanism"):
            campaign.resolve(campaign.cells()[0])


class TestBuiltinCampaigns:
    def test_expected_campaigns_present(self):
        assert {
            "freq-sweep",
            "burst-grid",
            "scale-osts",
            "mechanism-shootout",
        } <= set(CAMPAIGNS.names())

    def test_mechanism_shootout_covers_registry(self):
        from repro.core.mechanism import MECHANISMS

        campaign = CAMPAIGNS.build("mechanism-shootout")
        (axis,) = campaign.axes
        assert axis.values == tuple(MECHANISMS.names())

    def test_mechanism_shootout_subset_and_validation(self):
        campaign = CAMPAIGNS.build(
            "mechanism-shootout", mechanisms="none,adaptbf"
        )
        (axis,) = campaign.axes
        assert axis.values == ("none", "adaptbf")
        with pytest.raises(KeyError, match="unknown mechanism"):
            CAMPAIGNS.build("mechanism-shootout", mechanisms="bogus")

    def test_builtin_campaigns_validate_and_resolve(self):
        for name in CAMPAIGNS.names():
            campaign = CAMPAIGNS.build(name)
            cells = campaign.cells()
            assert cells, name
            spec = campaign.resolve(cells[0])
            assert spec.jobs, name

    def test_freq_sweep_matches_paper_axis(self):
        from repro.experiments.fig9 import PAPER_INTERVALS_S

        campaign = CAMPAIGNS.build("freq-sweep", time_scale=1.0, data_scale=1.0)
        (axis,) = campaign.axes
        assert axis.values == PAPER_INTERVALS_S

    def test_campaign_registry_describe(self):
        for name in CAMPAIGNS.names():
            text = CAMPAIGNS.describe(name)
            assert name in text
            assert "scenario:" in text


class TestFaultAxis:
    """The reserved ``fault``/``fault_params`` campaign parameters."""

    def chaos_campaign(self, **base_overrides) -> CampaignSpec:
        base = {
            "file_mib": 16.0,
            "fault": "ost-crash",
            "fault_params": {"start_s": 0.1, "duration_s": 0.2},
        }
        base.update(base_overrides)
        return CampaignSpec(
            name="chaos",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("adaptbf", "none")),),
            base_params=base,
        )

    def test_fault_applied_to_resolved_spec(self):
        campaign = self.chaos_campaign()
        for cell in campaign.cells():
            spec = campaign.resolve(cell)
            (fault,) = spec.faults
            assert fault.name == "ost-crash"
            assert fault.kwargs == {"start_s": 0.1, "duration_s": 0.2}

    def test_fault_name_sweepable_as_axis(self):
        campaign = CampaignSpec(
            name="chaos",
            scenario="quickstart",
            axes=(ParameterAxis("fault", ("ost-crash", "ost-degrade")),),
            base_params={"file_mib": 16.0},
        )
        resolved = [campaign.resolve(c) for c in campaign.cells()]
        assert [s.faults[0].name for s in resolved] == [
            "ost-crash",
            "ost-degrade",
        ]

    def test_fault_params_without_fault_rejected(self):
        campaign = CampaignSpec(
            name="chaos",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("none",)),),
            base_params={"fault_params": {"start_s": 0.1}},
        )
        with pytest.raises(ValueError, match="without a fault"):
            campaign.resolve(campaign.cells()[0])

    def test_cell_seed_flows_into_seeded_faults(self):
        campaign = CampaignSpec(
            name="churn",
            scenario="quickstart",
            axes=(ParameterAxis("mechanism", ("adaptbf", "none")),),
            base_params={"fault": "client-churn"},
        )
        for cell in campaign.cells():
            spec = campaign.resolve(cell)
            assert spec.faults[0].kwargs["seed"] == cell.seed

    def test_spec_hash_sensitive_to_fault_params(self):
        a = self.chaos_campaign()
        b = self.chaos_campaign(
            fault_params={"start_s": 0.1, "duration_s": 0.3}
        )
        assert a.spec_hash() != b.spec_hash()

    def test_json_round_trip_preserves_fault_axis(self):
        campaign = self.chaos_campaign()
        rebuilt = CampaignSpec.from_json_dict(campaign.to_json_dict())
        assert rebuilt.spec_hash() == campaign.spec_hash()
        resolved = rebuilt.resolve(rebuilt.cells()[0])
        assert resolved.faults[0].name == "ost-crash"
