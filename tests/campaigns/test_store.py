"""Tests for the durable campaign result stores (JSON-lines + SQLite).

Covers the store protocol itself: identity binding and spec-hash
mismatch rejection, commit/load bit-exact round trips, keep-first
idempotency, lease acquire/expiry/release/reclaim semantics, crash
tolerance of the append-only files, and ``open_store`` routing.
"""

import json

import pytest

from repro.campaigns.store import (
    CellRecord,
    JsonlStore,
    Lease,
    NullStore,
    SpecHashMismatchError,
    SqliteStore,
    StoreError,
    open_store,
)

HASH_A = "a" * 16
HASH_B = "b" * 16
CAMPAIGN_A = {"name": "alpha", "scenario": "quickstart", "seed": 0}


def record(index: int, value: float = 1.5) -> CellRecord:
    """A record with floats that don't round-trip by accident."""
    return CellRecord(
        index=index,
        seed=1234567 + index,
        params={"capacity_mib_s": 0.1 + 0.2, "n": index},
        row={
            "scenario": "quickstart",
            "aggregate_mib_s": value * (1.0 / 3.0),
            "fairness": 0.9999999999999998,
            "clients_finished": True,
        },
        wall_s=0.25,
    )


@pytest.fixture(params=["jsonl", "sqlite"])
def make_store(request, tmp_path):
    """Factory opening the *same* persistent store repeatedly."""
    if request.param == "jsonl":
        target = tmp_path / "store"
        return lambda: JsonlStore(target)
    target = tmp_path / "store.db"
    return lambda: SqliteStore(target)


class TestIdentity:
    def test_begin_binds_and_round_trips(self, make_store):
        store = make_store()
        assert store.campaign() is None
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.campaign() == (HASH_A, CAMPAIGN_A)
        store.close()
        # A fresh handle on the same location sees the identity.
        reopened = make_store()
        assert reopened.campaign() == (HASH_A, CAMPAIGN_A)
        reopened.close()

    def test_begin_same_hash_is_idempotent(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.campaign()[0] == HASH_A
        store.close()

    def test_mismatched_hash_is_loud(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        with pytest.raises(SpecHashMismatchError) as excinfo:
            store.begin(HASH_B, {"name": "beta"})
        assert HASH_A in str(excinfo.value)
        assert HASH_B in str(excinfo.value)
        store.close()
        # Still loud from a fresh handle (the durable identity wins).
        reopened = make_store()
        with pytest.raises(SpecHashMismatchError):
            reopened.begin(HASH_B, {"name": "beta"})
        reopened.close()


class TestCommit:
    def test_commit_load_round_trip_is_exact(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        first = record(0)
        store.commit(first)
        store.close()
        loaded = make_store().load()
        assert loaded == {0: first}
        # Bit-exact floats: the whole resume byte-identity rests on this.
        assert loaded[0].row["aggregate_mib_s"] == 1.5 * (1.0 / 3.0)
        assert loaded[0].params["capacity_mib_s"] == 0.1 + 0.2

    def test_first_commit_wins(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        store.commit(record(0, value=1.0))
        store.commit(record(0, value=999.0))  # racing duplicate: ignored
        assert store.load()[0].row["aggregate_mib_s"] == 1.0 * (1.0 / 3.0)
        store.close()

    def test_commit_releases_the_lease(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.acquire(0, "w1", now=100.0, ttl=50.0)
        store.commit(record(0))
        assert store.leases() == {}
        store.close()

    def test_committed_cell_cannot_be_leased(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        store.commit(record(0))
        assert not store.acquire(0, "w1", now=0.0, ttl=10.0)
        store.close()


class TestLeases:
    def test_live_lease_blocks_second_acquire(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.acquire(0, "w1", now=100.0, ttl=50.0)
        assert not store.acquire(0, "w2", now=120.0, ttl=50.0)
        assert store.leases()[0].worker == "w1"
        store.close()

    def test_expired_lease_is_reclaimed(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.acquire(0, "dead-worker", now=100.0, ttl=50.0)
        # 150.0 is the expiry instant: now >= expires_at counts as dead.
        assert store.acquire(0, "w2", now=150.0, ttl=50.0)
        lease = store.leases()[0]
        assert lease.worker == "w2"
        assert lease.expires_at == 200.0
        store.close()

    def test_release_frees_immediately(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.acquire(0, "w1", now=100.0, ttl=50.0)
        store.release(0)
        assert store.leases() == {}
        assert store.acquire(0, "w2", now=101.0, ttl=50.0)
        store.close()

    def test_leases_survive_reopen(self, make_store):
        store = make_store()
        store.begin(HASH_A, CAMPAIGN_A)
        store.acquire(3, "w1", now=10.0, ttl=5.0)
        store.close()
        assert make_store().leases() == {3: Lease(3, "w1", 15.0)}

    def test_lease_expired_predicate(self):
        lease = Lease(index=0, worker="w", expires_at=10.0)
        assert not lease.expired(9.999)
        assert lease.expired(10.0)
        assert lease.expired(11.0)


class TestJsonlCrashTolerance:
    def test_partial_trailing_row_line_is_skipped(self, tmp_path):
        store = JsonlStore(tmp_path / "s")
        store.begin(HASH_A, CAMPAIGN_A)
        store.commit(record(0))
        store.commit(record(1))
        # Simulate a crash mid-append: a torn, unterminated JSON fragment.
        with (tmp_path / "s" / "rows.jsonl").open("a") as handle:
            handle.write('{"index": 2, "seed": 99, "par')
        reloaded = JsonlStore(tmp_path / "s").load()
        assert sorted(reloaded) == [0, 1]

    def test_partial_trailing_lease_line_is_skipped(self, tmp_path):
        store = JsonlStore(tmp_path / "s")
        store.begin(HASH_A, CAMPAIGN_A)
        store.acquire(0, "w1", now=1.0, ttl=10.0)
        with (tmp_path / "s" / "leases.jsonl").open("a") as handle:
            handle.write('{"op": "acq')
        assert sorted(JsonlStore(tmp_path / "s").leases()) == [0]

    def test_no_temp_files_left_behind(self, tmp_path):
        store = JsonlStore(tmp_path / "s")
        store.begin(HASH_A, CAMPAIGN_A)
        leftovers = [
            p.name for p in (tmp_path / "s").iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []

    def test_corrupt_identity_is_loud(self, tmp_path):
        store = JsonlStore(tmp_path / "s")
        store.begin(HASH_A, CAMPAIGN_A)
        (tmp_path / "s" / "campaign.json").write_text("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            JsonlStore(tmp_path / "s").campaign()


class TestNullStore:
    def test_nothing_durable_but_protocol_complete(self):
        store = NullStore()
        assert store.location == "memory"
        store.begin(HASH_A, CAMPAIGN_A)
        assert store.campaign() == (HASH_A, CAMPAIGN_A)
        assert store.acquire(0, "w", now=0.0, ttl=10.0)
        store.commit(record(0))
        assert store.leases() == {}
        assert sorted(store.load()) == [0]
        # A second NullStore shares nothing: that's the point.
        assert NullStore().load() == {}

    def test_mismatch_still_loud(self):
        store = NullStore()
        store.begin(HASH_A, CAMPAIGN_A)
        with pytest.raises(SpecHashMismatchError):
            store.begin(HASH_B, {})


class TestOpenStore:
    def test_directory_routes_to_jsonl(self, tmp_path):
        store = open_store(tmp_path / "sweep")
        assert isinstance(store, JsonlStore)
        assert store.kind == "jsonl"

    def test_db_suffix_routes_to_sqlite(self, tmp_path):
        for suffix in (".db", ".sqlite", ".sqlite3"):
            store = open_store(tmp_path / f"sweep{suffix}")
            assert isinstance(store, SqliteStore), suffix
            store.close()

    def test_sqlite_prefix_routes_to_sqlite(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path / 'plain-name'}")
        assert isinstance(store, SqliteStore)
        store.close()

    def test_existing_sqlite_file_is_sniffed(self, tmp_path):
        # Create with a suffix, reopen via an extensionless path.
        target = tmp_path / "noext"
        SqliteStore(target).close()
        store = open_store(target)
        assert isinstance(store, SqliteStore)
        store.close()

    def test_foreign_file_is_rejected(self, tmp_path):
        target = tmp_path / "rows.txt"
        target.write_text("not a store")
        with pytest.raises(StoreError, match="neither"):
            open_store(target)

    def test_null_names(self):
        assert isinstance(open_store("null"), NullStore)
        assert isinstance(open_store("memory"), NullStore)


class TestCellRecord:
    def test_json_round_trip(self):
        original = record(7)
        payload = json.loads(original.to_json())
        assert CellRecord.from_json_dict(payload) == original
