"""Tests for campaign artifacts: layout, determinism, rerunnability."""

import csv
import json

from repro.campaigns import (
    rerun_command,
    run_campaign,
    write_artifacts,
)

# The shared two-cell quickstart sweep comes from the package conftest's
# session-scoped ``tiny_campaign`` factory fixture.


class TestLayout:
    def test_writes_all_four_files(self, tiny_campaign, tmp_path):
        result = run_campaign(tiny_campaign(), jobs=1)
        written = write_artifacts(result, tmp_path / "out")
        assert set(written) == {"manifest", "rows", "csv", "timing"}
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0

    def test_manifest_identifies_every_cell(self, tiny_campaign, tmp_path):
        campaign = tiny_campaign()
        result = run_campaign(campaign, jobs=1)
        written = write_artifacts(result, tmp_path)
        manifest = json.loads(written["manifest"].read_text())
        assert manifest["spec_hash"] == campaign.spec_hash()
        assert manifest["campaign"]["scenario"] == "quickstart"
        assert manifest["n_cells"] == 2
        for cell, outcome in zip(manifest["cells"], result.outcomes):
            assert cell["index"] == outcome.index
            assert cell["seed"] == outcome.seed
            assert cell["params"] == outcome.params
            # The standalone rerun carries base + axis params.
            assert "run quickstart" in cell["rerun"]
            assert "--param file_mib=8.0" in cell["rerun"]
            assert (
                f"--param capacity_mib_s={outcome.params['capacity_mib_s']}"
                in cell["rerun"]
            )

    def test_rows_json_contains_rows_and_summary(self, tiny_campaign, tmp_path):
        result = run_campaign(tiny_campaign(), jobs=1)
        written = write_artifacts(result, tmp_path)
        payload = json.loads(written["rows"].read_text())
        assert len(payload["rows"]) == 2
        for row in payload["rows"]:
            assert row["aggregate_mib_s"] > 0
            assert "latency_p99_ms" in row
            assert "per_job_mib_s" in row
        assert payload["summary"]["cells"] == 2

    def test_csv_has_param_and_metric_columns(self, tiny_campaign, tmp_path):
        result = run_campaign(tiny_campaign(), jobs=1)
        written = write_artifacts(result, tmp_path)
        with written["csv"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["capacity_mib_s"] == "512.0"
        assert float(rows[0]["aggregate_mib_s"]) > 0
        assert float(rows[0]["mib_s:science"]) > 0

    def test_timing_quarantines_wall_clock(self, tiny_campaign, tmp_path):
        result = run_campaign(tiny_campaign(), jobs=1)
        written = write_artifacts(result, tmp_path)
        timing = json.loads(written["timing"].read_text())
        assert timing["jobs"] == 1
        assert timing["wall_s"] > 0
        assert len(timing["cells"]) == 2
        # No wall-clock data may leak into the deterministic files.
        assert "wall" not in written["rows"].read_text()
        assert "wall" not in written["manifest"].read_text()


class TestDeterminism:
    def test_rows_and_manifest_bit_identical_across_worker_counts(
        self, tiny_campaign, tmp_path
    ):
        """The acceptance bar: --jobs 1 and --jobs N agree byte-for-byte on
        everything except timing.json."""
        campaign = tiny_campaign()
        serial = write_artifacts(
            run_campaign(campaign, jobs=1), tmp_path / "serial"
        )
        parallel = write_artifacts(
            run_campaign(campaign, jobs=4), tmp_path / "parallel"
        )
        for key in ("manifest", "rows", "csv"):
            assert serial[key].read_bytes() == parallel[key].read_bytes(), key


class TestRerunCommand:
    def test_rerun_reproduces_the_cell(self, tiny_campaign):
        """Building the scenario from the recorded rerun parameters yields
        the exact spec the campaign cell ran."""
        from repro.scenarios import REGISTRY

        campaign = tiny_campaign()
        result = run_campaign(campaign, jobs=1)
        outcome = result.outcomes[1]
        command = rerun_command(result, outcome)
        assert command.startswith("python -m repro.experiments run quickstart")
        cell = campaign.cells()[1]
        rebuilt = REGISTRY.build("quickstart", **campaign.build_params(cell))
        assert rebuilt == campaign.resolve(cell).with_run(seed=0)
