"""The reserved ``workload`` campaign axis and the workload-shootout."""

import json

from repro.campaigns import CAMPAIGNS, run_campaign, write_artifacts
from repro.campaigns.spec import CampaignSpec, ParameterAxis


def small_shootout(**overrides):
    params = dict(
        workloads="seq-write,poisson", duration_s=2.0, seed=1
    )
    params.update(overrides)
    return CAMPAIGNS.build("workload-shootout", **params)


class TestWorkloadAxisResolution:
    def test_cells_carry_workload(self):
        campaign = small_shootout()
        assert [cell.params["workload"] for cell in campaign.cells()] == [
            "seq-write",
            "poisson",
        ]

    def test_resolve_applies_with_workload(self):
        campaign = small_shootout()
        specs = [campaign.resolve(cell) for cell in campaign.cells()]
        assert [spec.workload for spec in specs] == ["seq-write", "poisson"]
        # The base scenario's contention structure is preserved.
        assert all(spec.job_ids == ["science", "hog"] for spec in specs)

    def test_cell_seed_reaches_seeded_workload(self):
        campaign = small_shootout()
        cell = campaign.cells()[1]  # the poisson cell
        spec = campaign.resolve(cell)
        assert spec.run.seed == cell.seed
        assert spec.jobs[0].processes[0].pattern.seed == cell.seed

    def test_workload_axis_on_any_campaign(self):
        """`workload` is reserved on every campaign, not just the shootout."""
        campaign = CampaignSpec(
            name="adhoc",
            scenario="quickstart",
            axes=(ParameterAxis("workload", ("seq-read", "on-off")),),
            base_params={"file_mib": 8.0, "duration": 1.0},
        )
        specs = [campaign.resolve(cell) for cell in campaign.cells()]
        assert [spec.workload for spec in specs] == ["seq-read", "on-off"]

    def test_default_sweeps_every_registered_workload(self):
        from repro.workloads.registry import WORKLOADS

        campaign = CAMPAIGNS.build("workload-shootout")
        assert [cell.params["workload"] for cell in campaign.cells()] == list(
            WORKLOADS.names()
        )

    def test_unknown_workload_fails_fast(self):
        import pytest

        with pytest.raises(KeyError, match="unknown workload"):
            CAMPAIGNS.build("workload-shootout", workloads="nope")

    def test_duration_cap_reaches_cells(self):
        campaign = small_shootout()
        spec = campaign.resolve(campaign.cells()[0])
        assert spec.run.duration_s == 2.0

    def test_capless_scenario_rejected_not_silently_uncapped(self):
        import pytest

        with pytest.raises(ValueError, match="no duration cap"):
            CAMPAIGNS.build("workload-shootout", scenario="allocation")
        # Explicitly disabling the cap is the supported escape hatch.
        campaign = CAMPAIGNS.build(
            "workload-shootout",
            scenario="allocation",
            workloads="seq-write",
            duration_s=0,
        )
        assert campaign.resolve(campaign.cells()[0]).run.duration_s is None


class TestWorkloadShootoutExecution:
    def test_rows_identical_across_worker_counts(self, tmp_path):
        campaign = small_shootout()
        serial = run_campaign(campaign, jobs=1)
        parallel = run_campaign(campaign, jobs=2)
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        write_artifacts(serial, dir_a)
        write_artifacts(parallel, dir_b)
        assert (dir_a / "rows.json").read_bytes() == (
            dir_b / "rows.json"
        ).read_bytes()

    def test_rerun_command_emits_workload_flag(self, tmp_path):
        campaign = small_shootout()
        result = run_campaign(campaign, jobs=1)
        written = write_artifacts(result, tmp_path)
        manifest = json.loads(written["manifest"].read_text())
        reruns = [cell["rerun"] for cell in manifest["cells"]]
        assert any("--workload poisson" in cmd for cmd in reruns)
        assert all("--param workload=" not in cmd for cmd in reruns)
