"""Crash/resume semantics of the durable campaign executor.

The acceptance bar: a campaign interrupted at an *arbitrary* point —
``max_cells`` stops, a cell raising mid-drain, SIGKILL of a pool worker,
SIGKILL of the whole coordinating process — and finished with resume must
yield ``rows.json``/``rows.csv`` byte-identical to an uninterrupted
``--jobs 1`` run, on both store backends and for serial and parallel
resumes.  Plus: lease-expiry reclamation, spec-hash-mismatch rejection,
and the resumed-run ``cells_per_s``/``skipped`` accounting.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.campaigns.queue as queue_mod
from repro.campaigns import (
    CampaignExecutionError,
    JsonlStore,
    ParameterAxis,
    SpecHashMismatchError,
    SqliteStore,
    StoreNotEmptyError,
    WorkQueue,
    queue_status,
    run_campaign,
    write_artifacts,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The deterministic artifacts resume must reproduce byte-for-byte.
DETERMINISTIC = ("rows.json", "rows.csv")

#: The resume tests run the conftest ``tiny_campaign`` fixture at four
#: capacities under their own name, so store spec-hashes never collide
#: with the executor module's two-cell runs.
RESUME_SHAPE = dict(
    name="resume-tiny",
    axes=(
        ParameterAxis("capacity_mib_s", (256.0, 512.0, 768.0, 1024.0)),
    ),
)


def make_store(tmp_path: Path, kind: str):
    if kind == "jsonl":
        return JsonlStore(tmp_path / "store")
    return SqliteStore(tmp_path / "store.db")


@pytest.fixture(scope="module")
def baseline(tiny_campaign, tmp_path_factory):
    """Uninterrupted jobs=1 artifacts of the shared tiny campaign."""
    out = tmp_path_factory.mktemp("baseline")
    result = run_campaign(tiny_campaign(**RESUME_SHAPE), jobs=1)
    return write_artifacts(result, out)


def assert_matches_baseline(result, out_dir: Path, baseline) -> None:
    written = write_artifacts(result, out_dir)
    for name in DETERMINISTIC:
        key = "rows" if name == "rows.json" else "csv"
        assert written[key].read_bytes() == baseline[key].read_bytes(), name


class TestResumeByteIdentity:
    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("stop_after", [1, 3])
    def test_interrupted_then_resumed_rows_are_byte_identical(
        self, tiny_campaign, tmp_path, baseline, kind, jobs, stop_after
    ):
        campaign = tiny_campaign(**RESUME_SHAPE)
        with make_store(tmp_path, kind) as store:
            partial = run_campaign(
                campaign, jobs=1, store=store, max_cells=stop_after
            )
            assert not partial.complete
            assert partial.executed == stop_after
        with make_store(tmp_path, kind) as store:
            resumed = run_campaign(
                campaign, jobs=jobs, store=store, resume=True
            )
        assert resumed.complete
        assert resumed.skipped == stop_after
        assert resumed.executed == campaign.n_cells - stop_after
        assert_matches_baseline(resumed, tmp_path / "out", baseline)

    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    def test_resume_of_complete_campaign_executes_nothing(
        self, tiny_campaign, tmp_path, baseline, kind
    ):
        campaign = tiny_campaign(**RESUME_SHAPE)
        with make_store(tmp_path, kind) as store:
            run_campaign(campaign, jobs=1, store=store)
        with make_store(tmp_path, kind) as store:
            resumed = run_campaign(
                campaign, jobs=1, store=store, resume=True
            )
        assert resumed.complete
        assert resumed.executed == 0
        assert resumed.skipped == campaign.n_cells
        assert resumed.cells_per_s == 0.0
        assert_matches_baseline(resumed, tmp_path / "out", baseline)


class TestGuards:
    def test_fresh_run_on_nonempty_store_is_loud(self, tiny_campaign, tmp_path):
        campaign = tiny_campaign(**RESUME_SHAPE)
        with make_store(tmp_path, "jsonl") as store:
            run_campaign(campaign, jobs=1, store=store, max_cells=1)
        with make_store(tmp_path, "jsonl") as store:
            with pytest.raises(StoreNotEmptyError, match="resume"):
                run_campaign(campaign, jobs=1, store=store)

    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    def test_spec_hash_mismatch_is_rejected(self, tiny_campaign, tmp_path, kind):
        with make_store(tmp_path, kind) as store:
            run_campaign(tiny_campaign(**RESUME_SHAPE), jobs=1, store=store, max_cells=1)
        other = tiny_campaign(
            **{
                **RESUME_SHAPE,
                "axes": (ParameterAxis("capacity_mib_s", (128.0,)),),
            }
        )
        with make_store(tmp_path, kind) as store:
            with pytest.raises(SpecHashMismatchError, match="spec hash"):
                run_campaign(other, jobs=1, store=store, resume=True)


class TestCellFailure:
    def test_raise_inside_cell_commits_the_rest_then_resume_heals(
        self, tiny_campaign, tmp_path, baseline, monkeypatch
    ):
        campaign = tiny_campaign(**RESUME_SHAPE)
        real = queue_mod._execute_cell

        def flaky(spec, cell):
            if cell.index == 1:
                raise RuntimeError("injected mid-campaign failure")
            return real(spec, cell)

        monkeypatch.setattr(queue_mod, "_execute_cell", flaky)
        store = make_store(tmp_path, "jsonl")
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_campaign(campaign, jobs=1, store=store)
        error = excinfo.value
        assert [f.index for f in error.failures] == [1]
        assert "injected" in error.failures[0].error
        # Every other cell committed durably before the error surfaced.
        assert sorted(store.load()) == [0, 2, 3]
        # The failed cell's lease was released: resume retries immediately.
        assert store.leases() == {}
        store.close()

        monkeypatch.setattr(queue_mod, "_execute_cell", real)
        with make_store(tmp_path, "jsonl") as fresh:
            resumed = run_campaign(
                campaign, jobs=1, store=fresh, resume=True
            )
        assert resumed.complete
        assert resumed.skipped == 3
        assert_matches_baseline(resumed, tmp_path / "out", baseline)

    def test_partial_result_rides_on_the_error(self, tiny_campaign, tmp_path, monkeypatch):
        campaign = tiny_campaign(**RESUME_SHAPE)
        real = queue_mod._execute_cell
        monkeypatch.setattr(
            queue_mod,
            "_execute_cell",
            lambda spec, cell: (_ for _ in ()).throw(ValueError("boom"))
            if cell.index >= 2
            else real(spec, cell),
        )
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_campaign(campaign, jobs=1)
        partial = excinfo.value.result
        assert [o.index for o in partial.outcomes] == [0, 1]
        assert len(excinfo.value.failures) == 2


class TestLeaseReclamation:
    def test_live_lease_is_respected(self, tiny_campaign, tmp_path):
        campaign = tiny_campaign(**RESUME_SHAPE)
        store = make_store(tmp_path, "jsonl")
        store.begin(campaign.spec_hash(), campaign.to_json_dict())
        # Another (live) run holds cell 2.
        assert store.acquire(2, "other-host:999", time.time(), ttl=3600.0)
        result = run_campaign(campaign, jobs=1, store=store, resume=True)
        assert not result.complete
        assert [o.index for o in result.outcomes] == [0, 1, 3]
        store.close()

    def test_dead_local_coordinator_lease_is_reclaimed(self, tiny_campaign, tmp_path):
        import socket

        campaign = tiny_campaign(**RESUME_SHAPE)
        store = make_store(tmp_path, "jsonl")
        store.begin(campaign.spec_hash(), campaign.to_json_dict())
        # A coordinator on THIS host that is provably dead: its lease has
        # hours of TTL left, but resume must not wait it out.
        ghost = subprocess.Popen([sys.executable, "-c", "pass"])
        ghost.wait()
        worker = f"{socket.gethostname()}:{ghost.pid}"
        assert store.acquire(2, worker, time.time(), ttl=3600.0)
        result = run_campaign(campaign, jobs=1, store=store, resume=True)
        assert result.complete
        assert [o.index for o in result.outcomes] == [0, 1, 2, 3]
        store.close()

    def test_expired_lease_is_reclaimed_and_executed(self, tiny_campaign, tmp_path):
        campaign = tiny_campaign(**RESUME_SHAPE)
        store = make_store(tmp_path, "sqlite")
        store.begin(campaign.spec_hash(), campaign.to_json_dict())
        # A worker died holding cell 2: its lease is long expired.
        assert store.acquire(
            2, "dead-host:123", time.time() - 100.0, ttl=1.0
        )
        queue = WorkQueue(campaign, store)
        drained = queue.drain(jobs=1)
        assert drained.reclaimed == 1
        assert sorted(o.index for o in drained.outcomes) == [0, 1, 2, 3]
        assert store.leases() == {}
        store.close()


class TestStatusAndAccounting:
    def test_status_counts_committed_leased_pending(self, tiny_campaign, tmp_path):
        campaign = tiny_campaign(**RESUME_SHAPE)
        with make_store(tmp_path, "jsonl") as store:
            run_campaign(campaign, jobs=1, store=store, max_cells=2)
        store = make_store(tmp_path, "jsonl")
        store.acquire(2, "w1", time.time(), ttl=3600.0)  # live
        store.acquire(3, "w2", time.time() - 100.0, ttl=1.0)  # expired
        status = queue_status(store)
        assert status.total == 4
        assert status.committed == 2
        assert status.leased == 1
        assert status.reclaimable == 1
        assert status.pending == 1
        assert status.spec_hash == campaign.spec_hash()
        text = status.describe()
        assert "skipped on resume: 2" in text
        assert "1 expired" in text
        store.close()

    def test_resumed_cells_per_s_counts_only_executed(self, tiny_campaign, tmp_path):
        campaign = tiny_campaign(**RESUME_SHAPE)
        with make_store(tmp_path, "jsonl") as store:
            run_campaign(campaign, jobs=1, store=store, max_cells=3)
        with make_store(tmp_path, "jsonl") as store:
            resumed = run_campaign(
                campaign, jobs=1, store=store, resume=True
            )
        assert resumed.skipped == 3
        assert resumed.executed == 1
        # Only this invocation's work counts: 1 cell over its wall time,
        # never 4 / wall_s (which would claim impossible speed).
        assert resumed.cells_per_s == pytest.approx(
            1 / resumed.wall_s
        )

    def test_skipped_surfaces_in_report_and_timing(self, tiny_campaign, tmp_path):
        import json

        from repro.metrics.report import format_campaign_report

        campaign = tiny_campaign(**RESUME_SHAPE)
        with make_store(tmp_path, "jsonl") as store:
            run_campaign(campaign, jobs=1, store=store, max_cells=1)
        with make_store(tmp_path, "jsonl") as store:
            resumed = run_campaign(
                campaign, jobs=1, store=store, resume=True
            )
        report = format_campaign_report(resumed)
        assert "skipped 1 already-committed" in report
        written = write_artifacts(resumed, tmp_path / "out")
        timing = json.loads(written["timing"].read_text())
        assert timing["skipped"] == 1
        assert timing["executed"] == 3


# -- killing real processes ------------------------------------------------

#: Slow-enough cells that a poll-then-kill reliably lands mid-campaign:
#: ~0.5-1 s of wall per cell, 4 cells.
KILL_CAMPAIGN_PARAMS = [
    "--param", "osts=1,2",
    "--param", "capacities=192,256",
    "--param", "file_mib=384",
    "--param", "procs=4",
]


def _cli(*args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        **kwargs,
    )


def _wait_for_commits(store_dir: Path, minimum: int, timeout: float = 60.0):
    """Poll the JSONL store until ``minimum`` cells have committed."""
    rows = store_dir / "rows.jsonl"
    deadline = time.time() + timeout
    while time.time() < deadline:
        if rows.exists():
            committed = len(rows.read_text().splitlines())
            if committed >= minimum:
                return committed
        time.sleep(0.02)
    raise AssertionError(
        f"store at {store_dir} never reached {minimum} committed cells"
    )


def _children_of(pid: int):
    """Direct child PIDs via /proc (Linux)."""
    kids = []
    task_dir = Path(f"/proc/{pid}/task")
    for task in task_dir.iterdir():
        children = task / "children"
        if children.exists():
            kids.extend(
                int(c) for c in children.read_text().split() if c.strip()
            )
    return kids


@pytest.fixture(scope="module")
def kill_baseline(tmp_path_factory):
    """Uninterrupted jobs=1 artifacts of the kill-test campaign."""
    from repro.campaigns import CAMPAIGNS

    # Exactly the CLI build path (string params coerced against the
    # factory signature), so spec hashes agree with the subprocess runs.
    raw = {
        "osts": "1,2",
        "capacities": "192,256",
        "file_mib": "384",
        "procs": "4",
    }
    campaign = CAMPAIGNS.build(
        "scale-osts", **CAMPAIGNS.coerce("scale-osts", raw)
    )
    out = tmp_path_factory.mktemp("kill-baseline")
    return write_artifacts(run_campaign(campaign, jobs=1), out)


@pytest.mark.skipif(sys.platform != "linux", reason="needs /proc + SIGKILL")
class TestKillAndResume:
    def test_sigkill_whole_run_then_resume(self, tmp_path, kill_baseline):
        store_dir = tmp_path / "store"
        proc = _cli(
            "campaign", "run", "scale-osts", *KILL_CAMPAIGN_PARAMS,
            "--jobs", "1", "--store", str(store_dir),
        )
        try:
            _wait_for_commits(store_dir, 1)
            proc.kill()  # SIGKILL: no cleanup, leases stay behind
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        committed = len(
            (store_dir / "rows.jsonl").read_text().splitlines()
        )
        assert committed < 4, "campaign finished before the kill landed"

        resume = _cli(
            "campaign", "resume", str(store_dir),
            "--out", str(tmp_path / "out"),
        )
        out, _ = resume.communicate(timeout=180)
        assert resume.returncode == 0, out.decode()
        for name in DETERMINISTIC:
            key = "rows" if name == "rows.json" else "csv"
            assert (tmp_path / "out" / name).read_bytes() == kill_baseline[
                key
            ].read_bytes(), name

    def test_sigkill_pool_worker_then_resume(self, tmp_path, kill_baseline):
        store_dir = tmp_path / "store"
        proc = _cli(
            "campaign", "run", "scale-osts", *KILL_CAMPAIGN_PARAMS,
            "--jobs", "2", "--store", str(store_dir),
        )
        try:
            _wait_for_commits(store_dir, 1)
            workers = _children_of(proc.pid)
            assert workers, "no pool worker processes found"
            os.kill(workers[0], signal.SIGKILL)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        # The coordinator survives the dead worker, reports the loss, and
        # exits non-zero with every finished cell already committed.
        assert proc.returncode == 1, out.decode()
        assert b"worker process died" in out or b"failed" in out
        committed = len(
            (store_dir / "rows.jsonl").read_text().splitlines()
        )
        assert 1 <= committed < 4

        resume = _cli(
            "campaign", "resume", str(store_dir), "--jobs", "2",
            "--out", str(tmp_path / "out"),
        )
        out, _ = resume.communicate(timeout=180)
        assert resume.returncode == 0, out.decode()
        for name in DETERMINISTIC:
            key = "rows" if name == "rows.json" else "csv"
            assert (tmp_path / "out" / name).read_bytes() == kill_baseline[
                key
            ].read_bytes(), name
