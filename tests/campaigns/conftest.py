"""Shared fixtures for the campaign test modules.

``tiny_campaign`` used to be copy-pasted (with drifting shapes) into
``test_executor``, ``test_resume``, and ``test_artifacts``; it lives here
once now as a session-scoped factory fixture.  Modules needing a
different shape pass constructor overrides — ``test_resume`` runs four
capacities under its own campaign name so store spec-hashes never
collide with the executor module's two-cell runs.
"""

import pytest

from repro.campaigns import CampaignSpec, ParameterAxis


@pytest.fixture(scope="session")
def tiny_campaign():
    """``tiny_campaign(**overrides)`` → the shared 2-cell quickstart sweep."""

    def _make(**overrides) -> CampaignSpec:
        kwargs = dict(
            name="tiny",
            scenario="quickstart",
            axes=(ParameterAxis("capacity_mib_s", (512.0, 1024.0)),),
            base_params={"file_mib": 8.0, "procs": 2},
        )
        kwargs.update(overrides)
        return CampaignSpec(**kwargs)

    return _make
