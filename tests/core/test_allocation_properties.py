"""Property-based tests (hypothesis) for the allocation algorithm invariants.

These pin the structural guarantees DESIGN.md §6 lists: exact token
conservation, ledger zero-sum, the per-job ``α + r`` exchange invariant, and
bounded remainders — across arbitrary multi-round demand histories.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.types import AllocationInput

JOBS = ["j0", "j1", "j2", "j3", "j4"]
NODES = {"j0": 1, "j1": 2, "j2": 4, "j3": 8, "j4": 16}


def round_strategy():
    """One round: a non-empty subset of jobs with positive demands."""
    return st.dictionaries(
        keys=st.sampled_from(JOBS),
        values=st.integers(min_value=1, max_value=2000),
        min_size=1,
        max_size=len(JOBS),
    )


history_strategy = st.lists(round_strategy(), min_size=1, max_size=12)

variant_strategy = st.sampled_from(
    [
        dict(),
        dict(enable_redistribution=False, enable_recompensation=False),
        dict(enable_recompensation=False),
        dict(df_priority_aware=False),
    ]
)


def run_history(history, **algo_kwargs):
    algo = TokenAllocationAlgorithm(**algo_kwargs)
    results = []
    for demands in history:
        results.append(
            algo.allocate(
                AllocationInput(
                    interval_s=0.1,
                    max_token_rate=1000.0,
                    demands=demands,
                    nodes=NODES,
                )
            )
        )
    return algo, results


@given(history=history_strategy, kwargs=variant_strategy)
@settings(max_examples=150, deadline=None)
def test_token_conservation(history, kwargs):
    """Every round distributes exactly the interval budget."""
    _, results = run_history(history, **kwargs)
    for result in results:
        assert sum(result.allocations.values()) == result.total_tokens


@given(history=history_strategy, kwargs=variant_strategy)
@settings(max_examples=150, deadline=None)
def test_ledger_zero_sum(history, kwargs):
    """Lending and borrowing balance globally at all times."""
    algo = TokenAllocationAlgorithm(**kwargs)
    for demands in history:
        algo.allocate(
            AllocationInput(
                interval_s=0.1,
                max_token_rate=1000.0,
                demands=demands,
                nodes=NODES,
            )
        )
        assert algo.records.total() == 0


@given(history=history_strategy)
@settings(max_examples=150, deadline=None)
def test_exchange_invariant_per_job(history):
    """α + r is conserved through steps 2-3 (tokens only ever *move*)."""
    _, results = run_history(history)
    for result in results:
        for job_alloc in result.per_job.values():
            before = job_alloc.initial + job_alloc.record_before
            after = job_alloc.final + job_alloc.record_after
            assert before == after, job_alloc


@given(history=history_strategy, kwargs=variant_strategy)
@settings(max_examples=150, deadline=None)
def test_allocations_non_negative(history, kwargs):
    _, results = run_history(history, **kwargs)
    for result in results:
        for job, tokens in result.allocations.items():
            assert tokens >= 0, (job, tokens)


@given(history=history_strategy)
@settings(max_examples=150, deadline=None)
def test_remainders_bounded(history):
    """Remainders stay in a small band around zero (no token leakage)."""
    algo, _ = run_history(history)
    for job, rho in algo.remainders.snapshot().items():
        assert -2.0 < rho < 2.0, (job, rho)


@given(history=history_strategy)
@settings(max_examples=150, deadline=None)
def test_reclaim_bounded_by_debt_and_allocation(history):
    """Reclaim ≤ the borrower's debt *at reclaim time* (r after step 2).

    Bounding by the post-redistribution record is what guarantees the
    paper's "not overcompensated" property: a borrower's record can never
    flip positive within a round (asserted below).
    """
    _, results = run_history(history)
    for result in results:
        for job_alloc in result.per_job.values():
            record_rd = (
                job_alloc.record_before
                + job_alloc.surplus
                - job_alloc.redistribution_share
            )
            assert job_alloc.reclaimed <= max(0, -record_rd)
            assert job_alloc.reclaimed <= job_alloc.after_redistribution
            if job_alloc.reclaimed > 0:
                assert job_alloc.record_after <= 0  # no sign flip


@given(history=history_strategy)
@settings(max_examples=150, deadline=None)
def test_surplus_never_exceeds_initial(history):
    """A job can only lend tokens it was actually allocated."""
    _, results = run_history(history)
    for result in results:
        for job_alloc in result.per_job.values():
            assert 0 <= job_alloc.surplus <= job_alloc.initial


@given(history=history_strategy)
@settings(max_examples=100, deadline=None)
def test_deterministic_given_same_history(history):
    """Two allocators fed identical histories agree exactly."""
    _, results_a = run_history(history)
    _, results_b = run_history(history)
    for ra, rb in zip(results_a, results_b):
        assert ra.allocations == rb.allocations


@given(
    demands=st.dictionaries(
        keys=st.sampled_from(JOBS),
        values=st.integers(min_value=1, max_value=100),
        min_size=2,
        max_size=5,
    )
)
@settings(max_examples=100, deadline=None)
def test_priority_monotone_when_demands_equal(demands):
    """With identical demands, more nodes never means fewer initial tokens."""
    equal = {job: 50 for job in demands}
    algo = TokenAllocationAlgorithm(
        enable_redistribution=False, enable_recompensation=False
    )
    result = algo.allocate(
        AllocationInput(
            interval_s=0.1, max_token_rate=1000.0, demands=equal, nodes=NODES
        )
    )
    jobs = sorted(equal, key=lambda j: NODES[j])
    for lo, hi in zip(jobs, jobs[1:]):
        assert result.allocations[lo] <= result.allocations[hi]
