"""Controller history retention and the no-demand (rule teardown) path."""

from collections import deque

import pytest

from repro.cluster.builder import build
from repro.scenarios.spec import PolicySpec, ScenarioSpec
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20


def spec_with(keep_history, volume_mib=256, interval_s=0.1) -> ScenarioSpec:
    return ScenarioSpec(
        name="hist",
        jobs=(
            JobSpec(
                job_id="j0",
                nodes=1,
                processes=(ProcessSpec(SequentialWritePattern(volume_mib * MIB)),),
            ),
            JobSpec(
                job_id="j1",
                nodes=3,
                processes=(ProcessSpec(SequentialWritePattern(volume_mib * MIB)),),
            ),
        ),
        policy=PolicySpec(keep_history=keep_history, interval_s=interval_s),
    )


class TestHistoryRetention:
    def test_default_keeps_every_round(self):
        cluster = build(spec_with(True))
        cluster.env.run(until=cluster.all_clients_done())
        ctrl = cluster.adaptbf.controller
        assert isinstance(ctrl.history, list)
        assert len(ctrl.history) > 3

    def test_int_caps_with_deque(self):
        cluster = build(spec_with(3))
        cluster.env.run(until=cluster.all_clients_done())
        ctrl = cluster.adaptbf.controller
        assert isinstance(ctrl.history, deque)
        assert ctrl.history.maxlen == 3
        assert len(ctrl.history) == 3
        # The retained rounds are the most recent ones.
        times = [round_.time for round_ in ctrl.history]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(cluster.env.now, abs=0.2)

    def test_false_disables_recording_but_not_callbacks(self):
        cluster = build(spec_with(False))
        seen = []
        cluster.adaptbf.controller.on_round(seen.append)
        cluster.env.run(until=cluster.all_clients_done())
        assert cluster.adaptbf.controller.history == []
        assert seen  # on_round still fires every round

    def test_nonpositive_cap_rejected(self):
        from repro.core.controller import SystemStatsController

        cluster = build(spec_with(True))
        ctrl = cluster.adaptbf.controller
        with pytest.raises(ValueError, match="keep_history"):
            SystemStatsController(
                cluster.env,
                jobstats=ctrl.jobstats,
                algorithm=ctrl.algorithm,
                daemon=ctrl.daemon,
                nodes=ctrl.nodes,
                max_token_rate=ctrl.max_token_rate,
                keep_history=-2,
            )


class TestNoDemandPath:
    """When every job goes idle the controller stops all managed rules so
    queued leftovers drain unthrottled (the paper's no-starvation path)."""

    def test_rules_stopped_after_jobs_finish(self):
        cluster = build(spec_with(True, volume_mib=64))
        env = cluster.env
        daemon = cluster.adaptbf.daemon
        env.run(until=cluster.all_clients_done())
        # While jobs ran, managed rules existed.
        assert daemon.rules_created > 0
        # Let a few more observation periods elapse with zero demand.
        env.run(until=env.now + 1.0)
        prefix = daemon.rule_prefix
        managed = [
            name for name in daemon.policy.rule_names() if name.startswith(prefix)
        ]
        assert managed == []
        assert daemon.rules_stopped > 0

    def test_no_demand_rounds_not_recorded(self):
        cluster = build(spec_with(True, volume_mib=64))
        env = cluster.env
        env.run(until=cluster.all_clients_done())
        # One more period may record the final RPCs served mid-window;
        # after that the demand signal is flat zero.
        env.run(until=env.now + 0.3)
        rounds_after_flush = len(cluster.adaptbf.history)
        env.run(until=env.now + 1.0)
        # Idle periods produce no allocation rounds (result is None).
        assert len(cluster.adaptbf.history) == rounds_after_flush

    def test_idle_controller_with_no_rules_stays_quiet(self):
        """_stop_all_rules must not fire when nothing is managed."""
        cluster = build(spec_with(True, volume_mib=64))
        env = cluster.env
        daemon = cluster.adaptbf.daemon
        env.run(until=cluster.all_clients_done())
        env.run(until=env.now + 1.0)
        stopped_once = daemon.rules_stopped
        env.run(until=env.now + 1.0)
        assert daemon.rules_stopped == stopped_once
