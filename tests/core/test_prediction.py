"""Tests for demand estimators (the §IV-E pattern-hint extension)."""

import pytest

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.prediction import (
    EwmaEstimator,
    LastValueEstimator,
    PeakHoldEstimator,
)
from repro.core.types import AllocationInput


class TestLastValue:
    def test_returns_latest_observation(self):
        est = LastValueEstimator()
        est.observe("j", 10)
        est.observe("j", 3)
        assert est.estimate("j") == 3.0

    def test_unknown_job_is_zero(self):
        assert LastValueEstimator().estimate("ghost") == 0.0


class TestEwma:
    def test_first_observation_initialises(self):
        est = EwmaEstimator(alpha=0.5)
        est.observe("j", 100)
        assert est.estimate("j") == 100.0

    def test_smooths_spikes(self):
        est = EwmaEstimator(alpha=0.5)
        est.observe("j", 100)
        est.observe("j", 0)
        assert est.estimate("j") == 50.0

    def test_alpha_one_is_last_value(self):
        est = EwmaEstimator(alpha=1.0)
        est.observe("j", 100)
        est.observe("j", 7)
        assert est.estimate("j") == 7.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)


class TestPeakHold:
    def test_holds_recent_maximum(self):
        est = PeakHoldEstimator(window=3)
        for demand in (5, 100, 2):
            est.observe("j", demand)
        assert est.estimate("j") == 100.0

    def test_old_peaks_expire(self):
        est = PeakHoldEstimator(window=2)
        for demand in (100, 2, 3):
            est.observe("j", demand)
        assert est.estimate("j") == 3.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PeakHoldEstimator(window=0)


class TestEstimatorInAllocator:
    NODES = {"lender": 1, "borrower": 1}

    def lend_then_claim(self, estimator):
        """Lender idles (bursty: alternating 200/1) while borrower hogs."""
        algo = TokenAllocationAlgorithm(demand_estimator=estimator)
        reclaims = []
        for round_ in range(12):
            lender_demand = 200 if round_ % 4 == 0 else 1
            result = algo.allocate(
                AllocationInput(
                    interval_s=0.1,
                    max_token_rate=1000.0,
                    demands={"lender": lender_demand, "borrower": 400},
                    nodes=self.NODES,
                )
            )
            reclaims.append(result.reclaimed_pool)
        return algo, reclaims

    def test_default_is_paper_last_value(self):
        algo = TokenAllocationAlgorithm()
        assert isinstance(algo.demand_estimator, LastValueEstimator)

    def test_peak_hold_defers_reclaim_until_needed(self):
        """Eq. 13's head-room term reclaims *more* when estimated future
        utilization is low (the paper: high future utilization ⇒ reclaim
        fewer).  Peak-hold predicts the next burst even in quiet periods,
        so its future-utilization stays high and reclaim is deferred —
        the borrower keeps tokens until the lender will actually use them.
        """
        _, last_value_reclaims = self.lend_then_claim(LastValueEstimator())
        _, peak_reclaims = self.lend_then_claim(PeakHoldEstimator(window=6))
        assert sum(peak_reclaims) <= sum(last_value_reclaims)

    def test_all_estimators_preserve_invariants(self):
        for estimator in (
            LastValueEstimator(),
            EwmaEstimator(alpha=0.3),
            PeakHoldEstimator(window=4),
        ):
            algo, _ = self.lend_then_claim(estimator)
            assert algo.records.total() == 0
