"""Integration tests: AdapTBF control loop over the simulated Lustre stack."""

import pytest

from repro.core import AdapTbf, install_static_rules
from repro.core.ablation import priority_only
from repro.lustre import ClientProcess, Oss, Ost
from repro.sim import Environment

MB = 1 << 20


class TestAdapTbfLoop:
    def test_rules_created_for_active_jobs(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        frame = AdapTbf(
            env, oss, nodes={"j1": 1, "j2": 3}, max_token_rate=100, interval_s=0.1
        )
        ClientProcess(env, net, oss, "j1", "c0", seq(50 * MB))
        ClientProcess(env, net, oss, "j2", "c1", seq(50 * MB))
        env.run(until=0.35)
        assert policy.has_rule_for_job("j1")
        assert policy.has_rule_for_job("j2")
        assert frame.daemon.rules_created == 2

    def test_priority_proportional_rates(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env, capacity_mbps=1000)
        AdapTbf(
            env, oss, nodes={"j1": 1, "j2": 3}, max_token_rate=1000, interval_s=0.1
        )
        ClientProcess(env, net, oss, "j1", "c0", seq(2000 * MB), window=32)
        ClientProcess(env, net, oss, "j2", "c1", seq(2000 * MB), window=32)
        env.run(until=1.0)
        r1 = policy.get_rule("adaptbf_j1")
        r2 = policy.get_rule("adaptbf_j2")
        # Both jobs saturate their shares => allocations track priority 1:3.
        assert r2.rate / r1.rate == pytest.approx(3.0, rel=0.25)
        # Hierarchy: the higher-priority job ranks first.
        assert r2.rank < r1.rank

    def test_rules_stopped_when_job_finishes(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        frame = AdapTbf(
            env, oss, nodes={"j1": 1, "j2": 1}, max_token_rate=100, interval_s=0.1
        )
        ClientProcess(env, net, oss, "j1", "c0", seq(5 * MB))
        ClientProcess(env, net, oss, "j2", "c1", seq(200 * MB))
        env.run(until=3.0)
        assert not policy.has_rule_for_job("j1")  # finished long ago
        assert frame.daemon.rules_stopped >= 1

    def test_surviving_job_absorbs_freed_bandwidth(self, make_stack):
        """Work conservation across job departures (§IV-D's point)."""
        env = Environment()
        ost, policy, oss, net = make_stack(env, capacity_mbps=100)
        AdapTbf(
            env, oss, nodes={"j1": 1, "j2": 1}, max_token_rate=100, interval_s=0.1
        )
        done = {}

        def tracked(total, tag):
            def program(io):
                yield from io.write(total)
                done[tag] = io.now

            return program

        ClientProcess(env, net, oss, "j1", "c0", tracked(20 * MB, "j1"))
        ClientProcess(env, net, oss, "j2", "c1", tracked(150 * MB, "j2"))
        # The controller loop runs forever; bound the run explicitly.
        env.run(until=5.0)
        # j2 should finish well before the 3 s a frozen 50-token rule implies,
        # because after j1 leaves it receives (almost) the whole OST.
        assert done["j2"] < 2.2

    def test_history_records_rounds(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        frame = AdapTbf(
            env, oss, nodes={"j1": 1}, max_token_rate=100, interval_s=0.1
        )
        ClientProcess(env, net, oss, "j1", "c0", seq(100 * MB))
        env.run(until=0.55)
        assert len(frame.history) >= 4
        assert frame.history[0].time == pytest.approx(0.1)
        assert frame.history[0].demands["j1"] > 0

    def test_unknown_job_left_on_fallback(self, make_stack, seq):
        """Jobs the scheduler doesn't know get no rule but still progress."""
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        AdapTbf(env, oss, nodes={"known": 1}, max_token_rate=100, interval_s=0.1)
        client = ClientProcess(env, net, oss, "mystery", "c0", seq(30 * MB))
        env.run(until=2.0)
        assert client.finished
        assert not policy.has_rule_for_job("mystery")

    def test_register_job_mid_run(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        frame = AdapTbf(env, oss, nodes={"j1": 1}, max_token_rate=100)

        def late_arrival(env):
            yield env.timeout(0.5)
            frame.register_job("late", nodes=7)
            ClientProcess(env, net, oss, "late", "c9", seq(30 * MB))

        ClientProcess(env, net, oss, "j1", "c0", seq(100 * MB))
        env.process(late_arrival(env))
        # Stop while `late` is still writing: its rule must exist right now.
        env.run(until=0.85)
        assert policy.has_rule_for_job("late")
        # And the late job's 7-node priority dominates the allocation.
        last = frame.history[-1].result.allocations
        assert last["late"] > last["j1"]

    def test_requires_tbf_policy(self):
        from repro.lustre import FifoPolicy

        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=MB)
        oss = Oss(env, ost, FifoPolicy(env))
        with pytest.raises(TypeError):
            AdapTbf(env, oss, nodes={}, max_token_rate=100)

    def test_overhead_validation(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        with pytest.raises(ValueError):
            AdapTbf(
                env,
                oss,
                nodes={"j1": 1},
                max_token_rate=100,
                interval_s=0.1,
                overhead_s=0.2,
            )

    def test_injected_ablation_algorithm(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        frame = AdapTbf(
            env,
            oss,
            nodes={"j1": 1},
            max_token_rate=100,
            algorithm=priority_only(),
        )
        assert not frame.algorithm.enable_redistribution

    def test_record_and_demand_series(self, make_stack, seq):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        frame = AdapTbf(
            env, oss, nodes={"j1": 1, "j2": 1}, max_token_rate=100, interval_s=0.1
        )
        ClientProcess(env, net, oss, "j1", "c0", seq(10 * MB))
        ClientProcess(env, net, oss, "j2", "c1", seq(100 * MB))
        env.run(until=1.0)
        records = frame.record_series("j1")
        demands = frame.demand_series("j1")
        assert len(records) == len(demands) == len(frame.history)
        assert all(isinstance(t, float) for t, _ in records)


class TestStaticBaseline:
    def test_static_rules_installed_proportionally(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env)
        rates = install_static_rules(
            policy, nodes={"j1": 1, "j2": 3}, max_token_rate=100
        )
        assert rates["j1"] == pytest.approx(25.0)
        assert rates["j2"] == pytest.approx(75.0)
        assert policy.has_rule_for_job("j1")

    def test_static_rules_never_adapt(self, make_stack):
        env = Environment()
        ost, policy, oss, net = make_stack(env, capacity_mbps=100)
        install_static_rules(policy, nodes={"j1": 1, "j2": 1}, max_token_rate=100)
        done = {}

        def tracked(total, tag):
            def program(io):
                yield from io.write(total)
                done[tag] = io.now

            return program

        ClientProcess(env, net, oss, "j1", "c0", tracked(10 * MB, "j1"))
        ClientProcess(env, net, oss, "j2", "c1", tracked(150 * MB, "j2"))
        env.run()
        # j2 is stuck at 50 tokens/s even after j1 finished: ~3 s not ~1.6 s.
        assert done["j2"] > 2.6

    def test_static_allocator_interface(self):
        from repro.core import StaticBwAllocator
        from repro.core.types import AllocationInput

        alloc = StaticBwAllocator(nodes={"j1": 1, "j2": 3})
        result = alloc.allocate(
            AllocationInput(
                interval_s=0.1,
                max_token_rate=1000,
                demands={"j1": 5},
                nodes={"j1": 1, "j2": 3},
            )
        )
        assert result.allocations == {"j1": 25, "j2": 75}

    def test_static_validation(self, make_stack):
        env = Environment()
        _, policy, _, _ = make_stack(env)
        with pytest.raises(ValueError):
            install_static_rules(policy, nodes={}, max_token_rate=100)
        with pytest.raises(ValueError):
            install_static_rules(policy, nodes={"j": 1}, max_token_rate=0)
