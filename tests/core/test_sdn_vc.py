"""Behavioral tests for the centralized contenders: ``sdn`` and ``vc``.

The shared protocol contracts live in ``test_mechanism_invariants``; this
module pins what makes these two mechanisms *centralized*: the sdn
control-plane model (latency ages the view, pushes land a round-trip
late, pushes to crashed OSTs drop), vc admission/preemption bookkeeping
(overbooked budget, waitlist, reservation ledger), and — because both
route every control-plane effect through ordinary simulation timeouts —
bit-identical event traces across kernel backends.
"""

import pytest

from repro.cluster.builder import build
from repro.scenarios import REGISTRY
from repro.sim.tracediff import diff_backends, format_report

MIB = 1 << 20


def centralized(spec, mechanism, **params):
    return spec.with_policy(mechanism=mechanism, mechanism_params=params)


class TestSdnControlPlane:
    def test_zero_latency_controller_is_an_oracle(
        self, make_mechanism_cluster
    ):
        cluster = make_mechanism_cluster("sdn", volume=512 * MIB)
        cluster.env.run(until=0.55)  # mid-run: both jobs still writing
        agent = cluster.handles[0]
        assert agent.rounds_run >= 4
        # Rules exist for both active jobs, node-weighted: j1 (2 nodes)
        # outranks and out-rates j0 (1 node).
        rules = {
            name: cluster.oss.policy.get_rule(name)
            for name in cluster.oss.policy.rule_names()
        }
        assert set(rules) == {"sdn_j0", "sdn_j1"}
        assert rules["sdn_j1"].rate > rules["sdn_j0"].rate
        # No flight time: updates land the instant they are decided.
        assert agent.rule_lag_s == pytest.approx(0.0, abs=1e-9)
        cluster.teardown()

    def test_latency_delays_and_ages_rule_updates(
        self, make_mechanism_cluster
    ):
        latency = 0.15
        cluster = make_mechanism_cluster(
            "sdn",
            mechanism_params={"ctrl_latency_s": latency},
            volume=512 * MIB,
        )
        cluster.env.run(until=1.05)
        agent = cluster.handles[0]
        assert agent.rounds_run >= 1
        # Lag = observation age at decision time (>= one-way latency,
        # rounded up to the sampling grid) + the return flight.
        assert agent.rule_lag_s >= 2 * latency - 1e-9
        cluster.teardown()

    def test_batching_skips_decision_rounds(self, make_mechanism_cluster):
        cluster = make_mechanism_cluster(
            "sdn", mechanism_params={"batch_rounds": 3}, volume=512 * MIB
        )
        cluster.env.run(until=1.05)  # 10 observation ticks
        agent = cluster.handles[0]
        assert 1 <= agent.rounds_run <= 4  # ~every 3rd tick, not all 10
        cluster.teardown()

    def test_control_plane_params_validated(self):
        from repro.core.mechanism import MECHANISMS

        with pytest.raises(ValueError, match="ctrl_latency_s"):
            MECHANISMS.build("sdn", ctrl_latency_s=-0.1)
        with pytest.raises(ValueError, match="batch_rounds"):
            MECHANISMS.build("sdn", batch_rounds=0)
        with pytest.raises(ValueError, match="headroom"):
            MECHANISMS.build("sdn", headroom=1.0)
        with pytest.raises(ValueError, match="demand_slack"):
            MECHANISMS.build("sdn", demand_slack=0.5)


class TestVirtualCircuits:
    def test_admission_in_priority_order_within_overbooked_budget(
        self, make_mechanism_cluster
    ):
        # Three jobs with 1/2/3 nodes each request 1.5·T·n/Σn against a
        # 1.2·T budget, greedily in priority order: j2 (0.75T) fits, j1
        # (0.5T) would overflow and is denied, j0 (0.25T) still fits.
        cluster = make_mechanism_cluster("vc", n_jobs=3, volume=16 * MIB)
        table = cluster.handles[0]
        assert set(table.admitted) == {"j0", "j2"}
        assert table.waiting == ["j1"]
        assert table.circuits_admitted == 2
        assert table.circuits_denied == 1
        budget = 1.2 * cluster.config.max_token_rate
        assert sum(table.admitted.values()) <= budget + 1e-9
        cluster.teardown()

    def test_denied_jobs_still_finish_via_fallback(
        self, make_mechanism_cluster
    ):
        cluster = make_mechanism_cluster("vc", n_jobs=3, volume=8 * MIB)
        cluster.env.run(until=cluster.all_clients_done())
        assert all(
            client.process.processed for client in cluster.clients
        )
        cluster.teardown()

    def test_idle_circuit_preempted_for_backlogged_waiter(
        self, make_mechanism_cluster
    ):
        # The admitted circuit holders (j0, j2) write small files, finish,
        # and go idle while denied j1 still has a large backlog: after
        # ``idle_rounds`` consecutive idle audits the table must preempt
        # the idle circuits and admit the backlogged waiter into the
        # freed budget.
        cluster = make_mechanism_cluster(
            "vc", n_jobs=3, volume=(8 * MIB, 512 * MIB, 8 * MIB)
        )
        table = cluster.handles[0]
        assert table.waiting == ["j1"]
        cluster.env.run(until=cluster.all_clients_done())
        assert table.circuits_preempted >= 1
        assert "j1" in table.admitted
        assert set(table.admitted).isdisjoint(table.waiting)
        cluster.teardown()

    def test_reservation_ledger_tracks_usage(self, make_mechanism_cluster):
        cluster = make_mechanism_cluster("vc", volume=32 * MIB)
        cluster.env.run(until=cluster.all_clients_done())
        table = cluster.handles[0]
        util = table.reservation_util
        assert util is not None and util >= 0.0
        cluster.teardown()
        # Teardown settles the ledger: time advancing past it must not
        # grow the reserved integral any further.
        settled = table.reservation_util
        cluster.env.run()
        assert table.reservation_util == settled

    def test_admission_params_validated(self):
        from repro.core.mechanism import MECHANISMS

        with pytest.raises(ValueError, match="overbook"):
            MECHANISMS.build("vc", overbook=0.9)
        with pytest.raises(ValueError, match="request_factor"):
            MECHANISMS.build("vc", request_factor=0.0)
        with pytest.raises(ValueError, match="idle_rounds"):
            MECHANISMS.build("vc", idle_rounds=0)


class TestTraceParity:
    """Heap and array backends dispatch identical event streams."""

    @pytest.mark.parametrize(
        "mechanism,params",
        [("sdn", {"ctrl_latency_s": 0.15}), ("vc", {})],
        ids=["sdn", "vc"],
    )
    @pytest.mark.parametrize(
        "scenario,kwargs",
        [
            ("quickstart", {"file_mib": 32.0, "procs": 2}),
            (
                "burst-storm",
                {
                    "n_jobs": 3,
                    "duration_s": 2.0,
                    "data_scale": 0.05,
                    "time_scale": 0.05,
                },
            ),
        ],
        ids=["quickstart", "burst-storm"],
    )
    def test_backends_agree(self, scenario, kwargs, mechanism, params):
        spec = centralized(
            REGISTRY.build(scenario, **kwargs), mechanism, **params
        )
        report = diff_backends(spec)
        assert report.equal, format_report(report)


class TestChaosReconvergence:
    """``ost-crash`` mid-control-round: stale state drops, tables balance."""

    def _crashed_spec(self, mechanism, **params):
        # Crash lands at 0.45 s — mid-round, with an sdn push (decided at
        # 0.4, landing at 0.55 under 0.15 s latency) in flight.
        spec = centralized(
            REGISTRY.build("quickstart", duration=3.0),
            mechanism,
            **params,
        )
        return spec.with_fault(
            "ost-crash", {"start_s": 0.45, "duration_s": 0.4}
        )

    def test_sdn_drops_stale_pushes_and_reconverges(self):
        spec = self._crashed_spec("sdn", ctrl_latency_s=0.15)
        cluster = build(spec)
        cluster.env.run(until=cluster.all_clients_done())
        agent = cluster.handles[0]
        # Pushes in flight when the OST died were dropped, never applied.
        assert agent.stale_drops >= 1
        # The controller kept running and re-converged after recovery:
        # decisions resumed and both jobs hold rules again.
        assert agent.rounds_run > 4
        assert set(cluster.oss.policy.rule_names()) <= {
            "sdn_science",
            "sdn_hog",
        }
        cluster.teardown()
        assert cluster.oss.policy.rule_names() == []

    def test_vc_table_stays_balanced_through_crash(self):
        spec = self._crashed_spec("vc")
        cluster = build(spec)
        cluster.env.run(until=cluster.all_clients_done())
        table = cluster.handles[0]
        # Ledger invariants hold after the crash/recovery cycle: no job
        # is both admitted and waiting, reserved rate fits the overbooked
        # budget, and the admission counters reconcile with the table.
        assert set(table.admitted).isdisjoint(table.waiting)
        budget = 1.2 * cluster.config.max_token_rate
        assert sum(table.admitted.values()) <= budget + 1e-9
        churn = table.circuits_admitted - table.circuits_preempted
        assert churn >= len(table.admitted)
        assert table.reservation_util is not None
        cluster.teardown()
