"""Unit tests for the lending/borrowing ledger."""

from repro.core.records import JobRecords


def test_unknown_job_is_zero():
    assert JobRecords().get("ghost") == 0


def test_add_and_get():
    r = JobRecords()
    assert r.add("a", 5) == 5
    assert r.add("a", -2) == 3
    assert r.get("a") == 3


def test_set_overwrites():
    r = JobRecords()
    r.add("a", 5)
    r.set("a", -7)
    assert r.get("a") == -7


def test_positive_negative_partition():
    r = JobRecords()
    r.set("lender", 10)
    r.set("borrower", -10)
    r.set("even", 0)
    jobs = ["lender", "borrower", "even", "ghost"]
    assert r.positive_jobs(jobs) == ["lender"]
    assert r.negative_jobs(jobs) == ["borrower"]


def test_partition_respects_among_filter():
    r = JobRecords()
    r.set("a", 5)
    r.set("b", 7)
    assert r.positive_jobs(["a"]) == ["a"]


def test_snapshot_is_a_copy():
    r = JobRecords()
    r.set("a", 1)
    snap = r.snapshot()
    snap["a"] = 99
    assert r.get("a") == 1


def test_total_and_len_and_contains():
    r = JobRecords()
    r.set("a", 5)
    r.set("b", -5)
    assert r.total() == 0
    assert len(r) == 2
    assert "a" in r
    assert "ghost" not in r
