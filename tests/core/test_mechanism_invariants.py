"""Contracts every registered bandwidth mechanism must honor.

Each mechanism module carries its own behavioral tests; this suite pins
the *shared* protocol down by parametrizing over whatever is in
:data:`~repro.core.mechanism.MECHANISMS` at collection time — a newly
registered mechanism is enrolled automatically and must pass:

* per-round token conservation: ``allocate`` never grants negative rates
  and never more than the OST's token rate scaled by the mechanism's own
  declared ``overbook`` factor (1.0 for everyone that doesn't declare one);
* end-to-end byte conservation: every byte a client requested is served
  exactly once, and the data plane never services beyond OST capacity;
* teardown quiescence: after ``teardown`` the event heap drains — no live
  timeouts, control loops, or in-flight rule pushes survive;
* ``describe()`` round-trips through the registry;
* campaign rows are byte-identical for ``--jobs 1`` vs ``--jobs 4``.

The simulation-facing contracts run on both kernel backends.
"""

import collections
import json
import math

import pytest

from repro.campaigns import CampaignSpec, ParameterAxis, run_campaign
from repro.core.mechanism import MECHANISMS

MIB = 1 << 20

ALL_MECHANISMS = sorted(MECHANISMS.names())
BACKENDS = ("heap", "array")

#: Mechanisms whose allocations share one per-OST budget (sum-bounded).
#: ``pid`` is feedback control: its contract is the per-job clamp only.
SUM_BUDGETED = frozenset(
    {"none", "static", "adaptbf", "adaptbf-ewma", "sdn", "vc"}
)


def overbook_factor(name):
    """The admission inflation a mechanism *declares*, 1.0 by default."""
    return float(MECHANISMS.get(name).params.get("overbook", 1.0))


@pytest.mark.parametrize("name", ALL_MECHANISMS)
class TestRegistryRoundTrip:
    def test_describe_round_trips_through_registry(self, name):
        entry = MECHANISMS.get(name)
        text = MECHANISMS.describe(name)
        assert f"mechanism: {name}" in text
        for param in entry.params:
            assert param in text
        built = MECHANISMS.build(name)
        assert built.name == name
        assert set(built.params) == set(entry.params)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ALL_MECHANISMS)
class TestTokenConservation:
    def test_round_rates_stay_inside_the_budget(
        self, make_mechanism_cluster, name, backend
    ):
        cluster = make_mechanism_cluster(
            name, volume=64 * MIB, backend=backend
        )
        cluster.env.run(until=0.25)  # a few rounds of real demand
        ceiling = cluster.config.max_token_rate * overbook_factor(name)
        for handle in cluster.handles:
            rates = handle.allocate(handle.observe())
            assert all(rate >= 0.0 for rate in rates.values())
            for job, rate in sorted(rates.items()):
                assert rate <= ceiling + 1e-6, (job, rate)
            if name in SUM_BUDGETED:
                assert sum(rates.values()) <= ceiling + 1e-6
        cluster.teardown()

    def test_bytes_conserved_end_to_end(
        self, make_mechanism_cluster, name, backend
    ):
        volume = 8 * MIB
        cluster = make_mechanism_cluster(name, volume=volume, backend=backend)
        served = collections.Counter()
        for oss in cluster.osses:
            oss.on_complete(
                lambda rpc: served.update({rpc.job_id: rpc.size_bytes})
            )
        cluster.env.run(until=cluster.all_clients_done())
        # Every requested byte served exactly once — rule churn, fallback
        # service, denial, and preemption may delay bytes, never lose or
        # duplicate them.
        assert dict(served) == {
            job.job_id: volume for job in cluster.spec.jobs
        }
        # And no mechanism conjures service beyond the physical link.
        elapsed = cluster.env.now
        assert sum(served.values()) <= (
            cluster.total_capacity_bps() * elapsed * (1 + 1e-9)
        )

    def test_teardown_quiesces_the_event_heap(
        self, make_mechanism_cluster, name, backend
    ):
        cluster = make_mechanism_cluster(
            name, volume=16 * MIB, backend=backend
        )
        env = cluster.env
        env.run(until=0.15)  # mid-run: rules live, clients in flight
        cluster.teardown()
        rounds_at_teardown = [h.rounds_run for h in cluster.handles]
        env.run()  # drains — or hangs the test if a loop survived
        assert env.peek() == math.inf
        for oss in cluster.osses:
            # FIFO-backed mechanisms ("none") have no rule table at all.
            if hasattr(oss.policy, "rule_names"):
                assert oss.policy.rule_names() == []
        # The clock advanced past every pending event and no control round
        # ran after teardown: no timeout, loop, or in-flight push survived.
        assert [h.rounds_run for h in cluster.handles] == rounds_at_teardown


@pytest.mark.parametrize("name", ALL_MECHANISMS)
class TestCampaignDeterminism:
    def test_rows_byte_identical_across_worker_counts(self, name):
        campaign = CampaignSpec(
            name=f"invariants-{name}",
            scenario="quickstart",
            axes=(ParameterAxis("capacity_mib_s", (512.0, 1024.0)),),
            base_params={"file_mib": 8.0, "procs": 2, "mechanism": name},
        )
        serial = run_campaign(campaign, jobs=1)
        parallel = run_campaign(campaign, jobs=4)

        def dump(result):
            return json.dumps(
                [
                    {"index": o.index, "seed": o.seed, **o.row.as_dict()}
                    for o in result.outcomes
                ],
                sort_keys=True,
            ).encode()

        assert dump(serial) == dump(parallel)
