"""Tests for the pluggable bandwidth-mechanism API (protocol + registry)."""

import pickle

import pytest

from repro.cluster.builder import build
from repro.core.mechanism import (
    MECHANISMS,
    AdapTbfMechanism,
    BandwidthMechanism,
    MechanismHandle,
    PeriodicDriver,
)
from repro.core.prediction import EwmaEstimator
from repro.lustre.nrs import FifoPolicy, TbfPolicy
from repro.scenarios.spec import PolicySpec, ScenarioSpec, TopologySpec
from repro.sim.engine import Environment
from repro.workloads.patterns import SequentialWritePattern
from repro.workloads.spec import JobSpec, ProcessSpec

MIB = 1 << 20


def tiny_jobs(n=2, volume=8 * MIB):
    return tuple(
        JobSpec(
            job_id=f"j{i}",
            nodes=i + 1,
            processes=(ProcessSpec(SequentialWritePattern(volume)),),
        )
        for i in range(n)
    )


def spec_for(mechanism, **params):
    return ScenarioSpec(
        name="t",
        jobs=tiny_jobs(),
        policy=PolicySpec(mechanism=mechanism, mechanism_params=params),
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = MECHANISMS.names()
        for expected in (
            "none",
            "static",
            "adaptbf",
            "adaptbf-ewma",
            "pid",
            "sdn",
            "vc",
        ):
            assert expected in names

    def test_build_stamps_name_and_params(self):
        mechanism = MECHANISMS.build("pid", kp=0.9)
        assert mechanism.name == "pid"
        assert mechanism.params["kp"] == 0.9
        assert "ki" in mechanism.params  # defaults resolved too

    def test_unknown_mechanism(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            MECHANISMS.get("bogus")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            MECHANISMS.build("pid", bogus=1)

    def test_describe_lists_parameters(self):
        text = MECHANISMS.describe("adaptbf-ewma")
        assert "alpha" in text
        assert "mechanism: adaptbf-ewma" in text

    def test_runtime_registration_round_trip(self):
        @MECHANISMS.register("test-noop", description="registered by a test")
        def _factory() -> BandwidthMechanism:
            class _Noop(BandwidthMechanism):
                def install(self, env, oss, spec, ost_index=0, algorithm_factory=None):
                    return _Handle(self, oss, ost_index)

            class _Handle(MechanismHandle):
                pass

            return _Noop()

        try:
            policy = PolicySpec(mechanism="test-noop")
            assert policy.mechanism == "test-noop"
            cluster = build(
                ScenarioSpec(name="t", jobs=tiny_jobs(), policy=policy)
            )
            assert len(cluster.handles) == 1
            assert cluster.controllers == []
        finally:
            MECHANISMS.unregister("test-noop")


class TestPolicySpecIntegration:
    def test_mechanism_params_frozen_and_canonical(self):
        policy = PolicySpec(mechanism="pid", mechanism_params={"ki": 0.2, "kp": 0.9})
        assert policy.mechanism_params == (("ki", 0.2), ("kp", 0.9))
        assert policy.mechanism_kwargs == {"kp": 0.9, "ki": 0.2}
        hash(policy)  # stays hashable despite the mapping input

    def test_mechanism_params_validated_against_schema(self):
        with pytest.raises(ValueError, match="no parameter"):
            PolicySpec(mechanism="pid", mechanism_params={"bogus": 1})

    def test_unknown_mechanism_lists_options(self):
        with pytest.raises(ValueError, match="registered"):
            PolicySpec(mechanism="bogus")

    def test_resolve_mechanism_applies_overrides(self):
        policy = PolicySpec(mechanism="adaptbf-ewma", mechanism_params={"alpha": 0.7})
        mechanism = policy.resolve_mechanism()
        assert mechanism.alpha == 0.7

    def test_spec_with_params_pickles(self):
        spec = spec_for("pid", kp=0.5)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.policy.mechanism_kwargs == {"kp": 0.5}

    def test_switching_mechanism_resets_stale_params(self):
        """Params belong to a factory schema; they don't survive a switch."""
        spec = spec_for("adaptbf-ewma", alpha=0.2)
        switched = spec.with_policy(mechanism="pid")
        assert switched.policy.mechanism_params == ()
        # Same-mechanism updates keep the params...
        kept = spec.with_policy(interval_s=0.2)
        assert kept.policy.mechanism_kwargs == {"alpha": 0.2}
        same = spec.with_policy(mechanism="adaptbf-ewma")
        assert same.policy.mechanism_kwargs == {"alpha": 0.2}
        # ...and an explicit mechanism_params always wins.
        explicit = spec.with_policy(
            mechanism="pid", mechanism_params={"kp": 0.9}
        )
        assert explicit.policy.mechanism_kwargs == {"kp": 0.9}


class TestBuildIntegration:
    def test_none_uses_fifo(self):
        cluster = build(spec_for("none"))
        assert isinstance(cluster.oss.policy, FifoPolicy)
        assert cluster.controllers == []
        assert cluster.static_rates is None
        assert cluster.handles[0].history is None

    def test_static_exposes_rates(self):
        cluster = build(spec_for("static"))
        assert isinstance(cluster.oss.policy, TbfPolicy)
        assert cluster.static_rates is not None
        assert sum(cluster.static_rates[0].values()) == pytest.approx(1024.0)

    def test_adaptbf_handles_expose_controllers(self):
        spec = ScenarioSpec(
            name="t",
            jobs=tiny_jobs(),
            topology=TopologySpec(n_osts=2),
        )
        cluster = build(spec)
        assert len(cluster.handles) == 2
        assert len(cluster.controllers) == 2
        assert cluster.adaptbf is cluster.controllers[0]
        assert cluster.mechanism.name == "adaptbf"

    def test_variant_param_overrides_policy_variant(self):
        cluster = build(spec_for("adaptbf", variant="priority_only"))
        assert not cluster.adaptbf.algorithm.enable_redistribution

    def test_ewma_wires_estimator(self):
        cluster = build(spec_for("adaptbf-ewma", alpha=0.3))
        estimator = cluster.adaptbf.algorithm.demand_estimator
        assert isinstance(estimator, EwmaEstimator)
        assert estimator.alpha == 0.3

    def test_algorithm_factory_still_wins(self):
        from repro.core.allocation import TokenAllocationAlgorithm

        marker = TokenAllocationAlgorithm()
        cluster = build(
            spec_for("adaptbf-ewma"), algorithm_factory=lambda: marker
        )
        assert cluster.adaptbf.algorithm is marker


class TestAdapTbfHandleHooks:
    """The protocol's observe/allocate/apply single-steps one round."""

    def _loaded_cluster(self):
        cluster = build(spec_for("adaptbf"))
        env = cluster.env
        # Let clients issue some RPCs but stop before the first round.
        env.run(until=0.05)
        return cluster

    def test_observe_reports_demands_without_clearing(self):
        cluster = self._loaded_cluster()
        handle = cluster.handles[0]
        first = handle.observe()
        assert first and all(d > 0 for d in first.values())
        assert handle.observe() == first  # read-only

    def test_allocate_then_apply_installs_rules(self):
        cluster = self._loaded_cluster()
        handle = cluster.handles[0]
        demands = handle.observe()
        rates = handle.allocate(demands)
        assert set(rates) == set(demands)
        assert all(rate > 0 for rate in rates.values())
        assert handle.oss.policy.rule_names() == []
        handle.apply(rates)
        assert len(handle.oss.policy.rule_names()) == len(rates)

    def test_teardown_stops_rules_and_loop(self):
        spec = ScenarioSpec(
            name="t",
            jobs=tiny_jobs(volume=512 * MIB),  # outlives the sampling window
            policy=PolicySpec(mechanism="adaptbf"),
        )
        cluster = build(spec)
        env = cluster.env
        env.run(until=0.35)  # a few allocation rounds
        handle = cluster.handles[0]
        rounds_before = handle.rounds_run
        assert handle.oss.policy.rule_names()
        handle.teardown()
        assert handle.oss.policy.rule_names() == []
        env.run(until=0.85)
        assert handle.rounds_run == rounds_before  # loop is dead


class TestPeriodicDriver:
    def test_drives_hooks_and_counts_rounds(self):
        env = Environment()
        calls = []

        class _Probe(MechanismHandle):
            def observe(self):
                calls.append("observe")
                return {"j": 1}

            def allocate(self, demands):
                calls.append("allocate")
                return {"j": 10.0}

            def apply(self, rates):
                calls.append("apply")

        mechanism = AdapTbfMechanism()
        mechanism.name = "probe"
        driver = PeriodicDriver(env, _Probe(mechanism, None, 0), interval_s=0.1)
        env.run(until=0.35)
        assert driver.rounds_run == 3
        assert calls[:3] == ["observe", "allocate", "apply"]
        driver.stop()
        env.run(until=1.0)
        assert driver.rounds_run == 3

    def test_validates_timing(self):
        env = Environment()
        mechanism = AdapTbfMechanism()
        handle = _inert(mechanism)
        with pytest.raises(ValueError, match="interval"):
            PeriodicDriver(env, handle, interval_s=0.0)
        with pytest.raises(ValueError, match="overhead"):
            PeriodicDriver(env, handle, interval_s=0.1, overhead_s=0.1)


def _inert(mechanism):
    class _Handle(MechanismHandle):
        pass

    return _Handle(mechanism, None, 0)


class TestPidMechanism:
    def test_runs_and_manages_rules(self):
        from repro.scenarios.runner import run_scenario

        result = run_scenario(spec_for("pid"))
        assert result.mechanism == "pid"
        assert result.clients_finished
        assert result.summary.aggregate_mib_s > 0
        assert result.history == []  # no allocation-round history kept

    def test_feedback_throttles_overserving_job(self):
        cluster = build(
            ScenarioSpec(
                name="t",
                jobs=tiny_jobs(n=2, volume=512 * MIB),
                policy=PolicySpec(mechanism="pid"),
            )
        )
        cluster.env.run(until=0.55)  # mid-run: both jobs still active
        handle = cluster.handles[0]
        assert handle.rounds_run >= 5
        assert handle.rules_created >= 2
        rules = {
            name: cluster.oss.policy.get_rule(name)
            for name in cluster.oss.policy.rule_names()
        }
        # j1 (2 nodes) is entitled to twice j0's share; feedback must order
        # the live rates accordingly.
        assert rules["pid_j1"].rate > rules["pid_j0"].rate

    def test_invalid_gains_rejected(self):
        with pytest.raises(ValueError, match="leak"):
            MECHANISMS.build("pid", leak=1.5)
        with pytest.raises(ValueError, match="floor_share"):
            MECHANISMS.build("pid", floor_share=0.0)


class TestRunMechanismsExtended:
    def test_any_registered_subset(self):
        from repro.scenarios.runner import run_mechanisms

        spec = spec_for("adaptbf")
        results = run_mechanisms(spec, mechanisms=("none", "pid"))
        assert set(results) == {"none", "pid"}
        for name, result in results.items():
            assert result.mechanism == name
