"""Unit tests for remainder accounting (Eq. 21-25)."""

import pytest

from repro.core.remainders import RemainderStore


def test_exact_integers_pass_through():
    store = RemainderStore()
    got = store.integerize({"a": 10.0, "b": 30.0, "c": 60.0}, 100)
    assert got == {"a": 10, "b": 30, "c": 60}
    assert all(abs(r) < 1e-9 for r in store.snapshot().values())


def test_fractions_floor_and_carry():
    store = RemainderStore()
    got = store.integerize({"a": 1.5, "b": 1.5}, 3)
    # Floors give 1+1=2; the leftover token goes to a largest-remainder job.
    assert sorted(got.values()) == [1, 2]
    assert sum(got.values()) == 3


def test_remainders_pay_back_over_time():
    """A job owed 0.5/round must receive ~n/2 tokens over n rounds."""
    store = RemainderStore()
    totals = {"a": 0, "b": 0}
    for _ in range(10):
        got = store.integerize({"a": 0.5, "b": 0.5}, 1)
        for job, tokens in got.items():
            totals[job] += tokens
    assert totals["a"] + totals["b"] == 10
    assert totals["a"] == 5
    assert totals["b"] == 5


def test_tiny_shares_are_not_starved():
    """Paper §III-C4: sub-token fair shares accumulate via remainders."""
    store = RemainderStore()
    received = 0
    for _ in range(100):
        got = store.integerize({"small": 0.1, "big": 99.9}, 100)
        received += got["small"]
    assert received == 10  # exactly 0.1 * 100


def test_total_always_met_exactly():
    store = RemainderStore()
    raw = {"a": 33.3333, "b": 33.3333, "c": 33.3334}
    for _ in range(50):
        got = store.integerize(raw, 100)
        assert sum(got.values()) == 100


def test_mismatched_total_rejected():
    store = RemainderStore()
    with pytest.raises(ValueError):
        store.integerize({"a": 10.0}, 99)


def test_empty_with_zero_total_ok():
    assert RemainderStore().integerize({}, 0) == {}


def test_empty_with_nonzero_total_rejected():
    with pytest.raises(ValueError):
        RemainderStore().integerize({}, 5)


def test_negative_total_rejected():
    with pytest.raises(ValueError):
        RemainderStore().integerize({"a": -1.0}, -1)


def test_grants_never_negative():
    store = RemainderStore()
    # Drive a job's remainder negative via leftover corrections...
    store.integerize({"a": 0.6, "b": 0.6, "c": 0.8}, 2)
    # ...then verify later grants stay >= 0 whatever the remainder state.
    for _ in range(20):
        got = store.integerize({"a": 0.4, "b": 0.3, "c": 0.3}, 1)
        assert all(v >= 0 for v in got.values())


def test_drop_forgets_job():
    store = RemainderStore()
    store.integerize({"a": 0.5, "b": 0.5}, 1)
    store.drop("a")
    assert store.get("a") == 0.0


def test_per_job_conservation():
    """raw + rho_before == granted + rho_after for every job."""
    store = RemainderStore()
    raw = {"a": 3.7, "b": 2.1, "c": 4.2}
    before = {j: store.get(j) for j in raw}
    got = store.integerize(raw, 10)
    for job in raw:
        assert raw[job] + before[job] == pytest.approx(
            got[job] + store.get(job)
        )
