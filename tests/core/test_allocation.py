"""Hand-computed unit tests for the three-step token allocation algorithm.

The two-round scenario below was worked through by hand from Eq. 1-20 (see
the inline arithmetic); it exercises priority allocation, surplus
redistribution with deficit prioritisation, the first-round exclusion from
re-compensation, and a full reclaim cycle in round two.
"""

import pytest

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.types import AllocationInput

NODES = {"A": 1, "B": 1, "C": 3, "D": 5}  # priorities 10/10/30/50 %


def make_input(demands, interval=0.1, rate=1000.0, nodes=NODES):
    return AllocationInput(
        interval_s=interval,
        max_token_rate=rate,
        demands=demands,
        nodes=nodes,
    )


class TestInitialAllocation:
    def test_priority_proportional_split(self):
        algo = TokenAllocationAlgorithm(
            enable_redistribution=False, enable_recompensation=False
        )
        result = algo.allocate(make_input({"A": 10, "B": 10, "C": 30, "D": 50}))
        assert result.allocations == {"A": 10, "B": 10, "C": 30, "D": 50}
        assert result.total_tokens == 100

    def test_only_active_jobs_allocated(self):
        algo = TokenAllocationAlgorithm(
            enable_redistribution=False, enable_recompensation=False
        )
        # Only C and D active: they split the whole budget 3:5.
        result = algo.allocate(make_input({"C": 30, "D": 50}))
        assert result.allocations == {"C": 38, "D": 62}
        assert "A" not in result.allocations

    def test_single_job_gets_everything(self):
        algo = TokenAllocationAlgorithm()
        result = algo.allocate(make_input({"A": 500}))
        assert result.allocations == {"A": 100}

    def test_fractional_budget_floor(self):
        algo = TokenAllocationAlgorithm()
        inputs = make_input({"A": 5}, interval=0.1, rate=1005.0)
        assert inputs.total_tokens == 100  # floor(100.5)


class TestRedistribution:
    def test_hand_computed_round(self):
        """Round 1 of the hand-worked scenario.

        u = d/alpha_init (first round): A 5.0, B 0.5, C 1.0, D 1.0.
        Surplus: only B lends 5.  DF: A 5.5, B .05, C .3, D .5 (sum 6.35).
        Raw shares of 5: A 4.33, B .04, C .24, D .39 -> floors 4,0,0,0 and
        the leftover token goes to D (largest remainder .39).
        """
        algo = TokenAllocationAlgorithm()
        result = algo.allocate(make_input({"A": 50, "B": 5, "C": 30, "D": 50}))
        assert result.surplus_pool == 5
        assert result.allocations == {"A": 14, "B": 5, "C": 30, "D": 51}
        assert algo.records.snapshot() == {"A": -4, "B": 5, "C": 0, "D": -1}
        # No re-compensation on round one (records were all zero before).
        assert result.reclaimed_pool == 0

    def test_no_surplus_no_changes(self):
        algo = TokenAllocationAlgorithm()
        result = algo.allocate(make_input({"A": 10, "B": 10, "C": 30, "D": 50}))
        assert result.surplus_pool == 0
        assert result.allocations == {"A": 10, "B": 10, "C": 30, "D": 50}
        assert algo.records.total() == 0

    def test_deficit_jobs_prioritised_over_hoarders(self):
        """A deficit job (u>1) must out-receive a same-priority idle one."""
        nodes = {"busy": 1, "idle": 1, "lender": 2}
        algo = TokenAllocationAlgorithm()
        result = algo.allocate(
            make_input({"busy": 200, "idle": 10, "lender": 1}, nodes=nodes)
        )
        a = result.per_job
        assert a["busy"].redistribution_share > a["idle"].redistribution_share
        assert a["lender"].surplus > 0

    def test_conservation_every_round(self):
        algo = TokenAllocationAlgorithm()
        for demands in (
            {"A": 50, "B": 5, "C": 30, "D": 50},
            {"A": 20, "B": 30, "C": 30, "D": 50},
            {"B": 1, "C": 500},
            {"A": 7},
        ):
            result = algo.allocate(make_input(demands))
            assert sum(result.allocations.values()) == result.total_tokens
            assert algo.records.total() == 0


class TestRecompensation:
    def test_hand_computed_reclaim_round(self):
        """Round 2 of the hand-worked scenario.

        After round 1: records A -4, B +5, C 0, D -1; prev alloc
        A 14, B 5, C 30, D 51.  Round 2 demands A 20, B 30, C 30, D 50:
        no surplus; J+ = {B}, J- = {A, D}.  u_B = 30/5 = 6;
        future u_B = 30/10 = 3 -> head-room 0; C = 0.1*(6+0)/2 = 0.3.
        Reclaims: A min(4, floor(.3*10)=3) = 3; D min(1, floor(.3*50)=15) = 1.
        B receives all 4.
        """
        algo = TokenAllocationAlgorithm()
        algo.allocate(make_input({"A": 50, "B": 5, "C": 30, "D": 50}))
        result = algo.allocate(make_input({"A": 20, "B": 30, "C": 30, "D": 50}))
        assert result.reclaimed_pool == 4
        assert result.allocations == {"A": 7, "B": 14, "C": 30, "D": 49}
        assert algo.records.snapshot() == {"A": -1, "B": 1, "C": 0, "D": 0}

    def test_reclaim_bounded_by_debt(self):
        for job_alloc in (
            TokenAllocationAlgorithm().allocate(
                make_input({"A": 50, "B": 5, "C": 30, "D": 50})
            ).per_job
        ).values():
            # Reclaim can never exceed the borrower's post-redistribution debt.
            record_rd = (
                job_alloc.record_before
                + job_alloc.surplus
                - job_alloc.redistribution_share
            )
            assert job_alloc.reclaimed <= max(0, -record_rd)

    def test_no_positive_records_no_reclaim(self):
        algo = TokenAllocationAlgorithm()
        algo.allocate(make_input({"A": 10, "B": 10, "C": 30, "D": 50}))
        result = algo.allocate(make_input({"A": 10, "B": 10, "C": 30, "D": 50}))
        assert result.reclaimed_pool == 0

    def test_disabled_recompensation_skips_reclaim(self):
        algo = TokenAllocationAlgorithm(enable_recompensation=False)
        algo.allocate(make_input({"A": 50, "B": 5, "C": 30, "D": 50}))
        result = algo.allocate(make_input({"A": 20, "B": 30, "C": 30, "D": 50}))
        assert result.reclaimed_pool == 0
        # B keeps its positive record; nobody pays it back.
        assert algo.records.get("B") > 0

    def test_lender_made_whole_over_time(self):
        """A lender whose demand rises is recompensated across rounds."""
        algo = TokenAllocationAlgorithm()
        nodes = {"lender": 1, "hog": 1}
        # Lender idles (demand 1) while hog over-consumes for a while.
        for _ in range(5):
            algo.allocate(make_input({"lender": 1, "hog": 200}, nodes=nodes))
        assert algo.records.get("lender") > 0
        debt = algo.records.get("hog")
        assert debt < 0
        # Lender wakes up hungry: reclaim should drive records toward zero.
        for _ in range(10):
            algo.allocate(make_input({"lender": 200, "hog": 200}, nodes=nodes))
        assert algo.records.get("hog") > debt
        assert algo.records.get("lender") < algo.records.get("lender") + 1


class TestEdgeCases:
    def test_inactive_jobs_keep_records(self):
        algo = TokenAllocationAlgorithm()
        algo.allocate(make_input({"A": 50, "B": 5, "C": 30, "D": 50}))
        record_b = algo.records.get("B")
        # B goes idle; its record must survive untouched.
        algo.allocate(make_input({"A": 20, "C": 30, "D": 50}))
        assert algo.records.get("B") == record_b

    def test_forget_job_clears_state(self):
        algo = TokenAllocationAlgorithm()
        algo.allocate(make_input({"A": 50, "B": 5, "C": 30, "D": 50}))
        algo.forget_job("B")
        assert algo.records.get("B") == 0
        assert algo.previous_allocation("B") is None

    def test_zero_demand_job_rejected(self):
        with pytest.raises(ValueError):
            make_input({"A": 0})

    def test_unknown_nodes_rejected(self):
        with pytest.raises(ValueError):
            AllocationInput(
                interval_s=0.1,
                max_token_rate=1000,
                demands={"ghost": 5},
                nodes={"A": 1},
            )

    def test_allocations_never_negative(self):
        algo = TokenAllocationAlgorithm()
        # Adversarial: tiny budget, many jobs, wild demand swings.
        nodes = {f"j{i}": i + 1 for i in range(8)}
        for demand in (1, 500, 3, 997, 2):
            demands = {j: demand + i for i, j in enumerate(sorted(nodes))}
            result = algo.allocate(
                make_input(demands, interval=0.01, rate=500.0, nodes=nodes)
            )
            assert all(v >= 0 for v in result.allocations.values())

    def test_rounds_counter(self):
        algo = TokenAllocationAlgorithm()
        algo.allocate(make_input({"A": 1}))
        algo.allocate(make_input({"A": 1}))
        assert algo.rounds_run == 2
