"""Failure injection: the control loop under hostile conditions.

DESIGN.md §6 commits to testing jobs appearing/disappearing mid-run,
zero-demand intervals, rule churn and OST bandwidth changes — the
conditions §II-B calls out ("the set of active applications on each
storage server is highly dynamic").
"""

import pytest

from repro.lustre import ClientProcess, Ost
from repro.sim import Environment
from repro.workloads.patterns import BurstPattern

MB = 1 << 20


class TestJobChurn:
    def test_flapping_job_keeps_ledger_balanced(self, make_controlled_stack, seq):
        """A job alternating active/idle must not corrupt the ledger."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(
            env, nodes={"steady": 1, "flapper": 1}
        )
        ClientProcess(env, net, oss, "steady", "c0", seq(200 * MB))
        ClientProcess(
            env,
            net,
            oss,
            "flapper",
            "c1",
            BurstPattern(
                burst_bytes=2 * MB, interval_s=0.35, count=8
            ).program,
        )
        env.run(until=4.0)
        assert frame.algorithm.records.total() == 0
        # Every allocation round conserved the token budget.
        for round_ in frame.history:
            assert (
                sum(round_.result.allocations.values())
                == round_.result.total_tokens
            )

    def test_many_short_lived_jobs_rule_churn(self, make_controlled_stack, seq):
        """Dozens of jobs arriving/finishing: rules start and stop cleanly."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(
            env, nodes={f"burst{i}": 1 for i in range(12)}
        )

        def spawner(env):
            for i in range(12):
                ClientProcess(env, net, oss, f"burst{i}", f"c{i}", seq(8 * MB))
                yield env.timeout(0.25)

        env.process(spawner(env))
        env.run(until=5.0)
        # All work served despite the churn.
        assert oss.completed_rpcs == 12 * 8
        # Rules of finished jobs were stopped (at most the last few remain).
        live = [n for n in policy.rule_names() if n.startswith("adaptbf_")]
        assert len(live) <= 3
        assert frame.daemon.rules_created >= 12
        assert frame.daemon.rules_stopped >= 9

    def test_zero_demand_interval_stops_all_rules(self, make_controlled_stack, seq):
        """A globally idle period must clear every managed rule."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(env, nodes={"j": 1})
        ClientProcess(env, net, oss, "j", "c0", seq(5 * MB))
        env.run(until=2.0)  # job finished long ago; many idle rounds passed
        assert [n for n in policy.rule_names() if n.startswith("adaptbf_")] == []

    def test_unknown_then_registered_job(self, make_controlled_stack, seq):
        """A job unknown to the scheduler is safe (fallback), then managed."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(env, nodes={"known": 1})
        client = ClientProcess(env, net, oss, "ghost", "c0", seq(300 * MB))

        def register_later(env):
            yield env.timeout(0.35)
            frame.register_job("ghost", nodes=2)

        env.process(register_later(env))
        env.run(until=1.0)
        assert policy.has_rule_for_job("ghost")  # managed once registered
        env.run(until=5.0)
        assert client.finished


class TestCapacityChanges:
    def test_disk_degradation_mid_run(self, make_controlled_stack, seq):
        """Halving disk speed mid-run: tokens outrun the disk, nothing breaks."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(env, capacity_mbps=100)
        frame.register_job("j", nodes=1)
        ClientProcess(env, net, oss, "j", "c0", seq(150 * MB))

        def degrade(env):
            yield env.timeout(0.5)
            ost.set_capacity(25 * MB)

        env.process(degrade(env))
        env.run(until=8.0)
        # ~50 MB in the first 0.5 s, remaining 100 MB at 25 MB/s => ~4.5 s.
        assert oss.completed_rpcs == 150
        assert frame.algorithm.records.total() == 0

    def test_disk_recovery_mid_run(self, make_controlled_stack):
        """Disk dips below rated speed, then recovers; tokens are rated at
        the nominal capacity throughout (the controller has no capacity
        feedback — §IV-G's simple deployment model)."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(env, capacity_mbps=100)
        ost.set_capacity(10 * MB)  # start degraded
        frame.register_job("j", nodes=1)
        done = []

        def program(io):
            yield from io.write(60 * MB)
            done.append(io.now)

        ClientProcess(env, net, oss, "j", "c0", program)

        def recover(env):
            yield env.timeout(1.0)
            ost.set_capacity(100 * MB)

        env.process(recover(env))
        env.run(until=10.0)
        # ~10 MB in the degraded 1st second, remaining ~50 MB at ~100 MB/s.
        assert done and done[0] < 3.0

    def test_capacity_validation(self):
        env = Environment()
        ost = Ost(env, "ost0", capacity_bps=MB)
        with pytest.raises(ValueError):
            ost.set_capacity(0)


class TestControllerOverheadModel:
    def test_overhead_delays_rule_application(self, make_controlled_stack, seq):
        """With overhead_s > 0 rules apply later within each round."""
        env = Environment()
        ost, policy, oss, net, frame = make_controlled_stack(
            env,
            nodes={"j": 1},
            overhead_s=0.025,  # the paper's measured ~25 ms
        )
        ClientProcess(env, net, oss, "j", "c0", seq(30 * MB))
        env.run(until=0.12)
        assert not policy.has_rule_for_job("j")  # still inside the overhead
        env.run(until=0.13)
        assert policy.has_rule_for_job("j")
