"""Direct tests for the §IV-C baselines: static rules and the allocator shim."""

import pytest

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.baselines import StaticBwAllocator, install_static_rules
from repro.core.types import AllocationInput
from repro.lustre.nrs import TbfPolicy
from repro.sim.engine import Environment


def tbf_policy():
    return TbfPolicy(Environment())


NODES = {"heavy": 6, "light": 2, "tiny": 1}


@pytest.fixture
def shared_input():
    """One allocation round both allocator implementations can consume."""
    return AllocationInput(
        interval_s=0.1,
        max_token_rate=1000.0,
        demands={"heavy": 80, "light": 10, "tiny": 4},
        nodes=NODES,
    )


class TestInstallStaticRules:
    def test_rates_are_global_node_proportional(self):
        policy = tbf_policy()
        rates = install_static_rules(policy, NODES, max_token_rate=900.0)
        assert rates == {
            "heavy": pytest.approx(600.0),
            "light": pytest.approx(200.0),
            "tiny": pytest.approx(100.0),
        }

    def test_one_rule_per_job_with_priority_ranks(self):
        policy = tbf_policy()
        install_static_rules(policy, NODES, max_token_rate=900.0)
        assert sorted(policy.rule_names()) == [
            "static_heavy",
            "static_light",
            "static_tiny",
        ]
        # Highest node count -> rank 0 (served first on deadline ties).
        assert policy.get_rule("static_heavy").rank == 0
        assert policy.get_rule("static_light").rank == 1
        assert policy.get_rule("static_tiny").rank == 2

    def test_ranks_break_node_ties_by_job_id(self):
        policy = tbf_policy()
        install_static_rules(
            policy, {"b": 2, "a": 2, "c": 1}, max_token_rate=100.0
        )
        assert policy.get_rule("static_a").rank == 0
        assert policy.get_rule("static_b").rank == 1
        assert policy.get_rule("static_c").rank == 2

    def test_rule_rates_sum_to_max_token_rate(self):
        policy = tbf_policy()
        rates = install_static_rules(policy, NODES, max_token_rate=1234.5)
        assert sum(rates.values()) == pytest.approx(1234.5)

    @pytest.mark.parametrize(
        "nodes, rate, match",
        [
            ({}, 100.0, "nodes must not be empty"),
            (NODES, 0.0, "max_token_rate must be positive"),
            (NODES, -5.0, "max_token_rate must be positive"),
            ({"bad": 0}, 100.0, "nodes must be positive"),
            ({"bad": -1}, 100.0, "nodes must be positive"),
        ],
    )
    def test_validation_errors(self, nodes, rate, match):
        with pytest.raises(ValueError, match=match):
            install_static_rules(tbf_policy(), nodes, max_token_rate=rate)

    def test_many_jobs_rank_assignment_is_consistent(self):
        """The precomputed rank map matches sorted order at scale."""
        nodes = {f"job{i:04d}": (i % 7) + 1 for i in range(300)}
        policy = tbf_policy()
        install_static_rules(policy, nodes, max_token_rate=3000.0)
        expected = sorted(nodes, key=lambda j: (-nodes[j], j))
        for rank, job in enumerate(expected):
            assert policy.get_rule(f"static_{job}").rank == rank


class TestStaticBwAllocator:
    def test_allocations_ignore_demand(self, shared_input):
        allocator = StaticBwAllocator(NODES)
        result = allocator.allocate(shared_input)
        total = shared_input.total_tokens
        assert result.allocations == {
            "heavy": int(total * 6 / 9),
            "light": int(total * 2 / 9),
            "tiny": int(total * 1 / 9),
        }
        # Same split regardless of who is actually asking for bandwidth.
        quiet = AllocationInput(
            interval_s=shared_input.interval_s,
            max_token_rate=shared_input.max_token_rate,
            demands={"tiny": 500},
            nodes=NODES,
        )
        assert allocator.allocate(quiet).allocations == result.allocations

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes must not be empty"):
            StaticBwAllocator({})

    def test_zero_token_utilization_is_finite_and_demand_aware(self):
        """DESIGN.md §1 parity: zero grant falls back to a 1-token base."""
        # 1000 jobs of 1 node vs a 10-token budget: most grants are zero.
        nodes = {f"j{i}": 1 for i in range(1000)}
        allocator = StaticBwAllocator(nodes)
        inputs = AllocationInput(
            interval_s=0.01,
            max_token_rate=1000.0,
            demands={"j0": 7},
            nodes=nodes,
        )
        result = allocator.allocate(inputs)
        assert result.allocations["j0"] == 0
        starved = result.per_job["j0"]
        # Positive demand on a zero grant is a deficit, not idleness.
        assert starved.utilization == pytest.approx(7.0)
        idle = result.per_job["j1"]
        assert idle.utilization == 0.0

    def test_utilization_matches_algorithm_fallback(self, shared_input):
        """Interface parity: first-round scores agree with the paper's
        algorithm wherever the static grant equals the initial allocation."""
        static = StaticBwAllocator(NODES).allocate(shared_input)
        adaptive = TokenAllocationAlgorithm(
            enable_redistribution=False, enable_recompensation=False
        ).allocate(shared_input)
        # The adaptive algorithm only sees *active* jobs (demand > 0); on
        # this fixture all three are listed, priorities coincide, so both
        # compute u = d / alpha with the same deviation-1 fallback.
        for job in shared_input.demands:
            s, a = static.per_job[job], adaptive.per_job[job]
            assert s.priority == pytest.approx(a.priority)
            if s.initial == a.initial:
                assert s.utilization == pytest.approx(a.utilization)

    def test_allocator_interface_parity(self, shared_input):
        """Both allocators satisfy the same structural contract."""
        for allocator in (
            StaticBwAllocator(NODES),
            TokenAllocationAlgorithm(),
        ):
            result = allocator.allocate(shared_input)
            assert set(result.allocations) <= set(NODES)
            assert result.total_tokens == shared_input.total_tokens
            assert sum(result.allocations.values()) <= result.total_tokens
            for job, allocation in result.per_job.items():
                assert allocation.final == result.allocations[job]
                assert allocation.final >= 0
                assert allocation.utilization >= 0.0
