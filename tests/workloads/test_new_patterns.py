"""Tests for the post-paper patterns: reads, mixes, stochastic arrivals,
phases and trace replay — including seeding determinism across processes."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from simstack import build_stack

from repro.lustre import ClientProcess, FifoPolicy
from repro.sim import Environment
from repro.workloads.patterns import (
    MixedReadWritePattern,
    OnOffPattern,
    PhasedPattern,
    PoissonArrivalPattern,
    SequentialReadPattern,
    SequentialWritePattern,
    TraceReplayPattern,
)
from repro.workloads.trace import TraceRecord

MB = 1 << 20


def run_pattern(pattern, capacity_mbps=1000, until=None, client_id="c0"):
    # Module-level (not a fixture) so the subprocess-seeding test can call
    # it from a picklable module-level helper.
    env = Environment()
    ost, policy, oss, net = build_stack(
        env, FifoPolicy, capacity_mbps=capacity_mbps
    )
    client = ClientProcess(env, net, oss, "job", client_id, pattern.program)
    if until is None:
        env.run()
    else:
        env.run(until=until)
    return env, client, ost


class TestSequentialReadPattern:
    def test_reads_exact_volume(self):
        env, client, ost = run_pattern(SequentialReadPattern(10 * MB))
        assert client.io.bytes_read == 10 * MB
        assert client.io.bytes_written == 0
        assert ost.bytes_served == 10 * MB

    def test_start_delay_respected(self):
        env, client, ost = run_pattern(
            SequentialReadPattern(10 * MB, start_delay_s=2.0)
        )
        assert env.now == pytest.approx(2.01, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialReadPattern(0)
        with pytest.raises(ValueError):
            SequentialReadPattern(1, start_delay_s=-1)

    def test_hint(self):
        assert SequentialReadPattern(5 * MB).total_bytes_hint() == 5 * MB


class TestMixedReadWritePattern:
    def test_exact_split_at_half(self):
        pattern = MixedReadWritePattern(
            total_bytes=16 * MB, read_fraction=0.5, chunk_bytes=2 * MB
        )
        env, client, ost = run_pattern(pattern)
        assert client.io.bytes_read == 8 * MB
        assert client.io.bytes_written == 8 * MB
        assert ost.bytes_served == 16 * MB

    def test_quarter_read_fraction(self):
        pattern = MixedReadWritePattern(
            total_bytes=16 * MB, read_fraction=0.25, chunk_bytes=2 * MB
        )
        env, client, ost = run_pattern(pattern)
        assert client.io.bytes_read == 4 * MB

    def test_all_writes_and_all_reads(self):
        env, client, _ = run_pattern(
            MixedReadWritePattern(8 * MB, read_fraction=0.0, chunk_bytes=MB)
        )
        assert client.io.bytes_read == 0
        env, client, _ = run_pattern(
            MixedReadWritePattern(8 * MB, read_fraction=1.0, chunk_bytes=MB)
        )
        assert client.io.bytes_written == 0

    def test_interleave_is_deterministic(self):
        pattern = MixedReadWritePattern(
            total_bytes=10 * MB, read_fraction=0.3, chunk_bytes=MB
        )
        first = run_pattern(pattern)[1].io.bytes_read
        second = run_pattern(pattern)[1].io.bytes_read
        assert first == second == 3 * MB

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(total_bytes=0),
            dict(total_bytes=1, read_fraction=-0.1),
            dict(total_bytes=1, read_fraction=1.1),
            dict(total_bytes=1, chunk_bytes=0),
            dict(total_bytes=1, start_delay_s=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MixedReadWritePattern(**kwargs)


class TestPoissonArrivalPattern:
    def test_moves_exact_volume(self):
        pattern = PoissonArrivalPattern(
            rate_per_s=50.0, op_bytes=MB, count=20, seed=3
        )
        env, client, ost = run_pattern(pattern)
        assert ost.bytes_served == 20 * MB

    def test_same_seed_same_schedule(self):
        pattern = PoissonArrivalPattern(
            rate_per_s=50.0, op_bytes=MB, count=20, seed=3
        )
        t1 = run_pattern(pattern)[0].now
        t2 = run_pattern(pattern)[0].now
        assert t1 == t2

    def test_different_seeds_differ(self):
        a = PoissonArrivalPattern(rate_per_s=50.0, op_bytes=MB, count=20, seed=1)
        b = PoissonArrivalPattern(rate_per_s=50.0, op_bytes=MB, count=20, seed=2)
        assert run_pattern(a)[0].now != run_pattern(b)[0].now

    def test_clients_get_independent_streams(self):
        pattern = PoissonArrivalPattern(
            rate_per_s=50.0, op_bytes=MB, count=20, seed=3
        )
        t_c0 = run_pattern(pattern, client_id="c0")[0].now
        t_c1 = run_pattern(pattern, client_id="c1")[0].now
        assert t_c0 != t_c1

    def test_read_fraction_produces_reads(self):
        pattern = PoissonArrivalPattern(
            rate_per_s=100.0, op_bytes=MB, count=40, read_fraction=0.5, seed=7
        )
        env, client, _ = run_pattern(pattern)
        assert client.io.bytes_read > 0
        assert client.io.bytes_written > 0
        assert client.io.bytes_read + client.io.bytes_written == 40 * MB

    def test_mean_gap_tracks_rate(self):
        pattern = PoissonArrivalPattern(
            rate_per_s=100.0, op_bytes=MB, count=200, seed=0
        )
        env, _, _ = run_pattern(pattern, capacity_mbps=100000)
        # 200 gaps at mean 10 ms each: the span should be ~2 s give or take
        # sampling noise (service time is negligible at this capacity).
        assert env.now == pytest.approx(2.0, rel=0.35)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rate_per_s=0, op_bytes=1, count=1),
            dict(rate_per_s=1, op_bytes=0, count=1),
            dict(rate_per_s=1, op_bytes=1, count=0),
            dict(rate_per_s=1, op_bytes=1, count=1, read_fraction=2),
            dict(rate_per_s=1, op_bytes=1, count=1, start_delay_s=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PoissonArrivalPattern(**kwargs)


class TestOnOffPattern:
    def test_phase_timing(self):
        pattern = OnOffPattern(
            on_bytes=10 * MB, on_s=1.0, off_s=1.0, cycles=3
        )
        env, client, _ = run_pattern(pattern)
        # 3 on-phases padded to 1 s each + 2 off-phases = ~5 s.
        assert env.now == pytest.approx(5.0, abs=0.1)
        assert client.io.bytes_written == 30 * MB

    def test_overrunning_on_phase_not_truncated(self):
        # 100 MB at 50 MB/s takes 2 s > on_s=1: the phase stretches.
        pattern = OnOffPattern(
            on_bytes=100 * MB, on_s=1.0, off_s=0.5, cycles=2
        )
        env, client, _ = run_pattern(pattern, capacity_mbps=50)
        assert client.io.bytes_written == 200 * MB
        assert env.now == pytest.approx(4.5, abs=0.2)

    def test_jitter_is_seeded_and_bounded(self):
        base = dict(on_bytes=MB, on_s=0.1, off_s=1.0, cycles=4, jitter_s=0.5)
        t1 = run_pattern(OnOffPattern(seed=1, **base))[0].now
        t2 = run_pattern(OnOffPattern(seed=1, **base))[0].now
        t3 = run_pattern(OnOffPattern(seed=2, **base))[0].now
        assert t1 == t2
        assert t1 != t3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(on_bytes=0, on_s=1, off_s=1, cycles=1),
            dict(on_bytes=1, on_s=0, off_s=1, cycles=1),
            dict(on_bytes=1, on_s=1, off_s=-1, cycles=1),
            dict(on_bytes=1, on_s=1, off_s=1, cycles=0),
            dict(on_bytes=1, on_s=1, off_s=1, cycles=1, jitter_s=-1),
            dict(on_bytes=1, on_s=1, off_s=0.5, cycles=1, jitter_s=0.6),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OnOffPattern(**kwargs)


class TestPhasedPattern:
    def test_runs_phases_in_order(self):
        pattern = PhasedPattern(
            phases=(
                SequentialWritePattern(4 * MB),
                SequentialReadPattern(2 * MB),
            ),
            repeat=2,
        )
        env, client, ost = run_pattern(pattern)
        assert client.io.bytes_written == 8 * MB
        assert client.io.bytes_read == 4 * MB
        assert pattern.total_bytes_hint() == 12 * MB

    def test_hint_unknown_if_any_phase_unknown(self):
        class Open(SequentialWritePattern):
            def total_bytes_hint(self):
                return None

        pattern = PhasedPattern(phases=(Open(MB),))
        assert pattern.total_bytes_hint() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedPattern(phases=())
        with pytest.raises(ValueError):
            PhasedPattern(phases=(SequentialWritePattern(MB),), repeat=0)
        with pytest.raises(ValueError):
            PhasedPattern(phases=("not a pattern",))


class TestTraceReplayPattern:
    def records(self):
        return (
            TraceRecord(0.0, "a", "write", 4 * MB),
            TraceRecord(1.0, "a", "read", 2 * MB),
            TraceRecord(2.0, "a", "write", MB),
        )

    def test_replays_at_offsets(self):
        pattern = TraceReplayPattern(records=self.records())
        env, client, ost = run_pattern(pattern)
        assert env.now == pytest.approx(2.0, abs=0.1)
        assert client.io.bytes_written == 5 * MB
        assert client.io.bytes_read == 2 * MB

    def test_time_scale_compresses(self):
        pattern = TraceReplayPattern(records=self.records(), time_scale=0.5)
        env, _, _ = run_pattern(pattern)
        assert env.now == pytest.approx(1.0, abs=0.1)

    def test_data_scale_scales_volumes(self):
        pattern = TraceReplayPattern(records=self.records(), data_scale=2.0)
        env, client, _ = run_pattern(pattern)
        assert client.io.bytes_written == 10 * MB

    def test_backpressure_when_behind_schedule(self):
        # 100 MB at 50 MB/s takes 2 s; the t=0.5 record waits for it.
        records = (
            TraceRecord(0.0, "a", "write", 100 * MB),
            TraceRecord(0.5, "a", "write", MB),
        )
        pattern = TraceReplayPattern(records=records)
        env, client, _ = run_pattern(pattern, capacity_mbps=50)
        assert env.now == pytest.approx(2.02, abs=0.1)
        assert client.io.bytes_written == 101 * MB

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayPattern(records=())

    def test_unsorted_records_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayPattern(
                records=(
                    TraceRecord(1.0, "a", "write", 1),
                    TraceRecord(0.0, "a", "write", 1),
                )
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplayPattern(records=self.records(), time_scale=0)
        with pytest.raises(ValueError):
            TraceReplayPattern(records=self.records(), data_scale=0)


def _completion_time_in_subprocess(seed: int) -> float:
    """Worker entry point: run a seeded pattern in a fresh process."""
    pattern = PoissonArrivalPattern(
        rate_per_s=50.0, op_bytes=MB, count=15, seed=seed
    )
    env = Environment()
    ost, policy, oss, net = build_stack(env, FifoPolicy, capacity_mbps=1000)
    ClientProcess(env, net, oss, "job", "c0", pattern.program)
    env.run()
    return env.now


class TestStreamSequencing:
    def io_handle(self):
        from repro.lustre.client import IoHandle

        env = Environment()
        ost, policy, oss, net = build_stack(
            env, FifoPolicy, capacity_mbps=1000
        )
        return IoHandle(env, net, oss, "job", "c0")

    def test_each_invocation_draws_a_fresh_stream(self):
        """Repeated phases of one pattern must not replay identical draws."""
        pattern = PoissonArrivalPattern(
            rate_per_s=1.0, op_bytes=MB, count=1, seed=0
        )
        io = self.io_handle()
        first = pattern.stream(io, "poisson").random(4).tolist()
        second = pattern.stream(io, "poisson").random(4).tolist()
        assert first != second

    def test_sequence_is_deterministic_across_handles(self):
        pattern = PoissonArrivalPattern(
            rate_per_s=1.0, op_bytes=MB, count=1, seed=0
        )

        def draws():
            io = self.io_handle()
            return [
                pattern.stream(io, "poisson").random(2).tolist()
                for _ in range(3)
            ]

        assert draws() == draws()

    def test_phased_repeat_cycles_differ(self):
        """A diurnal day-2 is not a bit-identical replay of day-1."""
        poisson = PoissonArrivalPattern(
            rate_per_s=50.0, op_bytes=MB, count=10, seed=5
        )
        single = run_pattern(poisson)[0].now
        repeated = run_pattern(PhasedPattern(phases=(poisson,), repeat=2))[0].now
        assert repeated != pytest.approx(2 * single, abs=1e-9)


class TestSeedingAcrossProcesses:
    def test_draws_identical_in_worker_process(self):
        """The same seeded pattern replays bit-identically in a separate
        OS process (RngStreams derives seeds by BLAKE2b, not hash())."""
        local = _completion_time_in_subprocess(42)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_completion_time_in_subprocess, 42).result()
        assert local == remote

    def test_pattern_survives_pickle(self):
        import pickle

        pattern = PoissonArrivalPattern(
            rate_per_s=5.0, op_bytes=MB, count=3, seed=9
        )
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern
        assert hash(clone) == hash(pattern)
