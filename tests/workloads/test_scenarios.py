"""Unit tests for the paper-scenario constructors."""

import pytest

from repro.workloads.scenarios import (
    GIB,
    MIB,
    ScenarioConfig,
    scenario_allocation,
    scenario_recompensation,
    scenario_redistribution,
)
from repro.workloads.spec import JobSpec, ProcessSpec, validate_jobs
from repro.workloads.patterns import SequentialWritePattern


class TestScenarioConfig:
    def test_defaults_are_paper_scale(self):
        cfg = ScenarioConfig()
        assert cfg.bytes_(GIB) == GIB
        assert cfg.secs(20.0) == 20.0

    def test_scaling(self):
        cfg = ScenarioConfig(data_scale=0.5, time_scale=0.1)
        assert cfg.bytes_(GIB) == GIB // 2
        assert cfg.secs(20.0) == pytest.approx(2.0)

    def test_bytes_floor_at_one_mib(self):
        cfg = ScenarioConfig(data_scale=1e-9)
        assert cfg.bytes_(GIB) == MIB

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            ScenarioConfig(data_scale=0)
        with pytest.raises(ValueError):
            ScenarioConfig(time_scale=-1)
        with pytest.raises(ValueError):
            ScenarioConfig(heavy_procs=0)
        with pytest.raises(ValueError):
            ScenarioConfig(capacity_hint_mib_s=0)

    def test_continuous_sizing_spans_duration(self):
        cfg = ScenarioConfig(capacity_hint_mib_s=1000)
        per_proc = cfg.continuous_bytes_per_proc(10.0, procs=10, saturation=1.0)
        assert per_proc * 10 == pytest.approx(1000 * MIB * 10, rel=0.01)


class TestScenarioAllocation:
    def test_matches_paper_configuration(self):
        s = scenario_allocation(ScenarioConfig())
        assert [j.job_id for j in s.jobs] == ["job1", "job2", "job3", "job4"]
        assert [j.nodes for j in s.jobs] == [1, 1, 3, 5]  # 10/10/30/50 %
        assert all(len(j.processes) == 16 for j in s.jobs)
        # Paper: each file is 1 GiB.
        for job in s.jobs:
            for proc in job.processes:
                assert proc.pattern.total_bytes_hint() == GIB
        assert s.duration_s is None  # run to completion

    def test_nodes_mapping(self):
        s = scenario_allocation()
        assert s.nodes == {"job1": 1, "job2": 1, "job3": 3, "job4": 5}


class TestScenarioRedistribution:
    def test_matches_paper_configuration(self):
        s = scenario_redistribution(ScenarioConfig())
        assert [j.nodes for j in s.jobs] == [3, 3, 3, 1]  # 30/30/30/10 %
        assert [len(j.processes) for j in s.jobs] == [2, 2, 2, 16]
        assert s.duration_s == pytest.approx(60.0)

    def test_bursts_interleave(self):
        s = scenario_redistribution(ScenarioConfig())
        delays = set()
        for job in s.jobs[:3]:
            for proc in job.processes:
                delays.add(proc.pattern.start_delay_s)
        assert len(delays) == 6  # all six burst streams offset differently

    def test_hog_outlives_window(self):
        cfg = ScenarioConfig(capacity_hint_mib_s=1024)
        s = scenario_redistribution(cfg)
        hog = s.jobs[3]
        # Hog volume exceeds what the OST can deliver in the window.
        assert hog.total_bytes_hint > 1024 * MIB * s.duration_s


class TestScenarioRecompensation:
    def test_matches_paper_configuration(self):
        s = scenario_recompensation(ScenarioConfig())
        assert [j.nodes for j in s.jobs] == [1, 1, 1, 1]  # equal 25 %
        assert [len(j.processes) for j in s.jobs] == [2, 2, 2, 16]

    def test_delays_are_20_50_80(self):
        s = scenario_recompensation(ScenarioConfig())
        delays = [job.processes[1].pattern.delay_s for job in s.jobs[:3]]
        assert delays == [20.0, 50.0, 80.0]

    def test_job3_has_smallest_burst(self):
        s = scenario_recompensation(ScenarioConfig())
        bursts = [job.processes[0].pattern.burst_bytes for job in s.jobs[:3]]
        assert bursts[2] == min(bursts)

    def test_time_scale_compresses_delays(self):
        s = scenario_recompensation(ScenarioConfig(time_scale=0.1))
        delays = [job.processes[1].pattern.delay_s for job in s.jobs[:3]]
        assert delays == pytest.approx([2.0, 5.0, 8.0])


class TestSpecValidation:
    def test_job_requires_processes(self):
        with pytest.raises(ValueError):
            JobSpec(job_id="j", nodes=1, processes=())

    def test_job_requires_positive_nodes(self):
        proc = ProcessSpec(SequentialWritePattern(MIB))
        with pytest.raises(ValueError):
            JobSpec(job_id="j", nodes=0, processes=(proc,))

    def test_job_requires_id(self):
        proc = ProcessSpec(SequentialWritePattern(MIB))
        with pytest.raises(ValueError):
            JobSpec(job_id="", nodes=1, processes=(proc,))

    def test_process_requires_positive_window(self):
        with pytest.raises(ValueError):
            ProcessSpec(SequentialWritePattern(MIB), window=0)

    def test_duplicate_job_ids_rejected(self):
        proc = ProcessSpec(SequentialWritePattern(MIB))
        jobs = [
            JobSpec(job_id="same", nodes=1, processes=(proc,)),
            JobSpec(job_id="same", nodes=1, processes=(proc,)),
        ]
        with pytest.raises(ValueError):
            validate_jobs(jobs)

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            validate_jobs([])

    def test_total_bytes_hint_sums_processes(self):
        procs = (
            ProcessSpec(SequentialWritePattern(MIB)),
            ProcessSpec(SequentialWritePattern(2 * MIB)),
        )
        job = JobSpec(job_id="j", nodes=1, processes=procs)
        assert job.total_bytes_hint == 3 * MIB
