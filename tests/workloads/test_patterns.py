"""Unit tests for workload patterns, executed on the real client stack."""

import pytest

from repro.lustre import ClientProcess, FifoPolicy
from repro.sim import Environment
from repro.workloads.patterns import (
    BurstPattern,
    DelayedContinuousPattern,
    SequentialWritePattern,
)

MB = 1 << 20


@pytest.fixture
def run_pattern(make_stack):
    def _run(pattern, capacity_mbps=1000, until=None):
        env = Environment()
        ost, policy, oss, net = make_stack(
            env, FifoPolicy, capacity_mbps=capacity_mbps
        )
        client = ClientProcess(env, net, oss, "job", "c0", pattern.program)
        if until is None:
            env.run()
        else:
            env.run(until=until)
        return env, client, ost

    return _run


class TestSequentialWritePattern:
    def test_writes_exact_volume(self, run_pattern):
        env, client, ost = run_pattern(SequentialWritePattern(10 * MB))
        assert client.io.bytes_written == 10 * MB
        assert ost.bytes_served == 10 * MB

    def test_start_delay_respected(self, run_pattern):
        env, client, ost = run_pattern(
            SequentialWritePattern(10 * MB, start_delay_s=2.0)
        )
        # 10 MB at 1000 MB/s is ~10 ms; almost all time is the delay.
        assert env.now == pytest.approx(2.01, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialWritePattern(0)
        with pytest.raises(ValueError):
            SequentialWritePattern(1, start_delay_s=-1)

    def test_hint(self):
        assert SequentialWritePattern(5 * MB).total_bytes_hint() == 5 * MB


class TestBurstPattern:
    def test_gap_pacing_sleeps_after_completion(self, run_pattern):
        pattern = BurstPattern(
            burst_bytes=10 * MB, interval_s=1.0, count=3, pace="gap"
        )
        env, client, ost = run_pattern(pattern)
        # 3 bursts of ~10ms separated by two 1s gaps => ~2.03s total.
        assert env.now == pytest.approx(2.03, abs=0.1)
        assert client.io.bytes_written == 30 * MB

    def test_cadence_pacing_fixed_period(self, run_pattern):
        pattern = BurstPattern(
            burst_bytes=10 * MB, interval_s=1.0, count=3, pace="cadence"
        )
        env, client, ost = run_pattern(pattern)
        # Bursts start at 0, 1, 2; last burst ~10ms => ~2.01s.
        assert env.now == pytest.approx(2.01, abs=0.1)

    def test_cadence_backpressure_when_burst_overruns(self, run_pattern):
        # 100 MB at 50 MB/s takes 2 s > 1 s interval: bursts run back-to-back.
        pattern = BurstPattern(
            burst_bytes=100 * MB, interval_s=1.0, count=2, pace="cadence"
        )
        env, client, ost = run_pattern(pattern, capacity_mbps=50)
        assert env.now == pytest.approx(4.0, abs=0.2)

    def test_start_delay_offsets_first_burst(self, run_pattern):
        pattern = BurstPattern(
            burst_bytes=1 * MB, interval_s=1.0, count=1, start_delay_s=3.0
        )
        env, client, ost = run_pattern(pattern)
        assert env.now == pytest.approx(3.0, abs=0.1)

    def test_hint(self):
        assert (
            BurstPattern(burst_bytes=MB, interval_s=1, count=7).total_bytes_hint()
            == 7 * MB
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(burst_bytes=0, interval_s=1, count=1),
            dict(burst_bytes=1, interval_s=0, count=1),
            dict(burst_bytes=1, interval_s=1, count=0),
            dict(burst_bytes=1, interval_s=1, count=1, start_delay_s=-1),
            dict(burst_bytes=1, interval_s=1, count=1, pace="warp"),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BurstPattern(**kwargs)


class TestDelayedContinuousPattern:
    def test_waits_then_streams(self, run_pattern):
        pattern = DelayedContinuousPattern(delay_s=5.0, total_bytes=10 * MB)
        env, client, ost = run_pattern(pattern)
        assert env.now == pytest.approx(5.01, abs=0.05)
        assert client.io.bytes_written == 10 * MB

    def test_nothing_written_before_delay(self, make_stack):
        pattern = DelayedContinuousPattern(delay_s=5.0, total_bytes=10 * MB)
        env = Environment()
        ost, policy, oss, net = make_stack(
            env, FifoPolicy, capacity_mbps=1000
        )
        ClientProcess(env, net, oss, "job", "c0", pattern.program)
        env.run(until=4.9)
        assert ost.bytes_served == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayedContinuousPattern(delay_s=-1, total_bytes=1)
        with pytest.raises(ValueError):
            DelayedContinuousPattern(delay_s=0, total_bytes=0)
