"""Tests for the workload registry and the spec-level workload axis."""

import pytest

from repro.scenarios import REGISTRY
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.patterns import (
    Pattern,
    PoissonArrivalPattern,
    SequentialWritePattern,
    TraceReplayPattern,
)
from repro.workloads.registry import WORKLOADS

MB = 1 << 20

EXPECTED_BUILTINS = {
    "seq-write",
    "seq-read",
    "mixed-rw",
    "burst",
    "delayed-continuous",
    "poisson",
    "on-off",
    "diurnal",
    "trace-replay",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(WORKLOADS.names())
        assert len(WORKLOADS.names()) >= 8

    def test_build_returns_pattern(self):
        for name in WORKLOADS.names():
            assert isinstance(WORKLOADS.build(name), Pattern)

    def test_build_with_overrides(self):
        pattern = WORKLOADS.build("seq-write", total_mib=16)
        assert pattern == SequentialWritePattern(16 * MB)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            WORKLOADS.get("nope")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            WORKLOADS.build("seq-write", bogus=1)

    def test_coerce_types(self):
        coerced = WORKLOADS.coerce(
            "poisson", {"rate_per_s": "12.5", "count": "8", "seed": "3"}
        )
        assert coerced == {"rate_per_s": 12.5, "count": 8, "seed": 3}

    def test_describe_includes_param_docs(self):
        text = WORKLOADS.describe("poisson")
        assert "rate_per_s" in text
        assert "Mean arrival rate" in text  # pulled from the docstring schema
        assert "PoissonArrivalPattern" in text

    def test_trace_replay_default_uses_bundled_trace(self):
        pattern = WORKLOADS.build("trace-replay")
        assert isinstance(pattern, TraceReplayPattern)
        assert len(pattern.records) >= 10

    def test_trace_replay_job_filter(self):
        pattern = WORKLOADS.build("trace-replay", job="ingest")
        assert {r.job for r in pattern.records} == {"ingest"}

    def test_trace_replay_unknown_job(self):
        with pytest.raises(ValueError, match="jobs present"):
            WORKLOADS.build("trace-replay", job="nope")

    def test_trace_replay_unknown_job_with_sorted_trace(self, tmp_path):
        """The jobs-present error must survive sort=True (no unsorted
        reload masking it with a back-in-time TraceFormatError)."""
        path = tmp_path / "merged.csv"
        path.write_text(
            "t_offset_s,job,op,nbytes\n1.0,a,write,1\n0.5,b,write,1\n"
        )
        with pytest.raises(ValueError, match=r"jobs present: \['a', 'b'\]"):
            WORKLOADS.build(
                "trace-replay", trace=str(path), sort=True, job="typo"
            )

    def test_describe_names_the_workload_param_flag(self):
        text = WORKLOADS.describe("poisson")
        assert "--workload-param" in text
        assert "--param k=v" not in text

    def test_mechanism_describe_includes_param_docs(self):
        from repro.core.mechanism import MECHANISMS

        text = MECHANISMS.describe("adaptbf-ewma")
        assert "alpha" in text
        assert "smoothing factor" in text
        assert "--mechanism-param" in text


class TestWithWorkload:
    def spec(self, seed=0):
        return REGISTRY.build("quickstart", file_mib=16).with_run(seed=seed)

    def test_preserves_job_structure(self):
        spec = self.spec().with_workload("seq-read", {"total_mib": 8})
        assert spec.job_ids == ["science", "hog"]
        assert [job.nodes for job in spec.jobs] == [4, 1]
        assert all(
            type(p.pattern).__name__ == "SequentialReadPattern"
            for job in spec.jobs
            for p in job.processes
        )
        assert spec.workload == "seq-read"
        assert dict(spec.workload_params) == {"total_mib": 8}

    def test_preserves_windows(self):
        base = self.spec()
        swapped = base.with_workload("seq-write")
        for job_a, job_b in zip(base.jobs, swapped.jobs):
            assert [p.window for p in job_a.processes] == [
                p.window for p in job_b.processes
            ]

    def test_run_seed_flows_into_seeded_workloads(self):
        spec = self.spec(seed=7).with_workload("poisson")
        pattern = spec.jobs[0].processes[0].pattern
        assert isinstance(pattern, PoissonArrivalPattern)
        assert pattern.seed == 7

    def test_explicit_seed_wins(self):
        spec = self.spec(seed=7).with_workload("poisson", {"seed": 3})
        assert spec.jobs[0].processes[0].pattern.seed == 3

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            self.spec().with_workload("nope")

    def test_unknown_param(self):
        with pytest.raises(ValueError, match="no parameter"):
            self.spec().with_workload("seq-write", {"bogus": 1})

    def test_spec_remains_hashable_and_picklable(self):
        import pickle

        spec = self.spec().with_workload("poisson", {"rate_per_s": 4.0})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        hash(clone)

    def test_describe_mentions_workload(self):
        text = self.spec().with_workload("on-off").describe()
        assert "workload: on-off" in text

    def test_spec_validation_rejects_params_without_name(self):
        with pytest.raises(ValueError, match="without a workload"):
            ScenarioSpec(
                name="x",
                jobs=self.spec().jobs,
                workload_params={"total_mib": 1},
            )

    def test_spec_validation_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ScenarioSpec(name="x", jobs=self.spec().jobs, workload="nope")
