"""Trace loading/validation: formats, edge cases, grouping."""

import json

import pytest

from repro.workloads.trace import (
    EXAMPLE_TRACE,
    TraceFormatError,
    TraceRecord,
    load_trace,
    records_by_job,
    validate_trace,
)

HEADER = "t_offset_s,job,op,nbytes\n"


def write_csv(tmp_path, body, name="trace.csv"):
    path = tmp_path / name
    path.write_text(HEADER + body)
    return path


class TestTraceRecord:
    def test_valid_record(self):
        record = TraceRecord(t_offset_s=1.5, job="a", op="read", nbytes=4096)
        assert record.op == "read"

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="t_offset_s"):
            TraceRecord(t_offset_s=-0.1, job="a", op="write", nbytes=1)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op must be"):
            TraceRecord(t_offset_s=0.0, job="a", op="append", nbytes=1)

    def test_zero_byte_op_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            TraceRecord(t_offset_s=0.0, job="a", op="write", nbytes=0)

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError, match="job"):
            TraceRecord(t_offset_s=0.0, job="", op="write", nbytes=1)


class TestLoadCsv:
    def test_loads_and_orders(self, tmp_path):
        path = write_csv(tmp_path, "0.0,a,write,100\n1.0,b,read,200\n")
        records = load_trace(path)
        assert len(records) == 2
        assert records[1] == TraceRecord(1.0, "b", "read", 200)

    def test_empty_trace_rejected(self, tmp_path):
        path = write_csv(tmp_path, "")
        with pytest.raises(TraceFormatError, match="empty"):
            load_trace(path)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0.0,a,write,100\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_unsorted_timestamps_rejected(self, tmp_path):
        path = write_csv(tmp_path, "1.0,a,write,100\n0.5,a,write,100\n")
        with pytest.raises(TraceFormatError, match="back in time"):
            load_trace(path)

    def test_unsorted_timestamps_sortable(self, tmp_path):
        path = write_csv(tmp_path, "1.0,a,write,100\n0.5,b,write,100\n")
        records = load_trace(path, sort=True)
        assert [r.t_offset_s for r in records] == [0.5, 1.0]

    def test_zero_byte_op_rejected(self, tmp_path):
        path = write_csv(tmp_path, "0.0,a,write,0\n")
        with pytest.raises(TraceFormatError, match="nbytes"):
            load_trace(path)

    def test_unknown_op_rejected_with_location(self, tmp_path):
        path = write_csv(tmp_path, "0.0,a,write,1\n0.1,a,truncate,1\n")
        with pytest.raises(TraceFormatError, match=r":3"):
            load_trace(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("t_offset_s,job,op\n0.0,a,write\n")
        with pytest.raises(TraceFormatError, match="missing"):
            load_trace(path)

    def test_unknown_column_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("t_offset_s,job,op,nbytes,extra\n0.0,a,write,1,x\n")
        with pytest.raises(TraceFormatError, match="unknown column"):
            load_trace(path)

    def test_ops_case_insensitive(self, tmp_path):
        path = write_csv(tmp_path, "0.0,a,WRITE,1\n0.1,a,Read,1\n")
        records = load_trace(path)
        assert [r.op for r in records] == ["write", "read"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="not found"):
            load_trace(tmp_path / "nope.csv")

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "trace.parquet"
        path.write_text("x")
        with pytest.raises(TraceFormatError, match="unsupported"):
            load_trace(path)


class TestLoadJsonl:
    def test_loads(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rows = [
            {"t_offset_s": 0.0, "job": "a", "op": "write", "nbytes": 100},
            {"t_offset_s": 0.5, "job": "b", "op": "read", "nbytes": 50},
        ]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        records = load_trace(path)
        assert records == (
            TraceRecord(0.0, "a", "write", 100),
            TraceRecord(0.5, "b", "read", 50),
        )

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t_offset_s": 0, "job": "a", "op": "write", "nbytes": 1}\n\n'
        )
        assert len(load_trace(path)) == 1

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            load_trace(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="object"):
            load_trace(path)


class TestValidateTrace:
    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            validate_trace(())

    def test_equal_timestamps_allowed(self):
        records = (
            TraceRecord(1.0, "a", "write", 1),
            TraceRecord(1.0, "b", "write", 1),
        )
        validate_trace(records)  # does not raise


class TestRecordsByJob:
    def test_groups_preserving_order(self):
        records = (
            TraceRecord(0.0, "a", "write", 1),
            TraceRecord(0.5, "b", "read", 2),
            TraceRecord(1.0, "a", "write", 3),
        )
        grouped = records_by_job(records)
        assert set(grouped) == {"a", "b"}
        assert [r.nbytes for r in grouped["a"]] == [1, 3]


class TestBundledTrace:
    def test_example_trace_loads(self):
        records = load_trace(EXAMPLE_TRACE)
        assert len(records) >= 10
        jobs = set(records_by_job(records))
        assert jobs == {"ingest", "analysis", "checkpoint"}
        assert any(r.op == "read" for r in records)
