#!/usr/bin/env python3
"""Generalizing AdapTBF beyond Lustre (paper §III-E).

The paper notes that the adaptive token-borrowing mechanism "can be applied
to situations involving the adaptive allocation of shared, finite resources
among competing entities in a decentralized manner".  This example uses the
:class:`~repro.core.allocation.TokenAllocationAlgorithm` *standalone* — no
simulator, no Lustre — to arbitrate an API gateway's request budget among
tenants with different paid tiers (the "priority") and shifting traffic.

Each control period we feed the allocator the observed per-tenant request
counts; it returns each tenant's request budget for the next period.  Watch
the bronze tenant borrow the enterprise tenant's unused budget at night and
hand it back (with its ledger balanced) when the enterprise traffic
returns in the morning.

Run:  python examples/custom_resource.py
"""

from repro.core.allocation import TokenAllocationAlgorithm
from repro.core.types import AllocationInput

#: Paid tiers, expressed exactly like compute-node counts in the paper.
TENANT_TIER = {"enterprise": 10, "startup": 4, "bronze": 1}

#: Gateway capacity: requests per second.
CAPACITY_RPS = 10_000

#: Control period: one "hour" per allocation round.
PERIOD_S = 1.0


def traffic(hour: int) -> dict:
    """Synthetic diurnal demand (requests observed in the elapsed hour)."""
    if hour < 8:  # night: enterprise sleeps, bronze runs its batch scrape
        return {"enterprise": 200, "startup": 2_000, "bronze": 7_500}
    if hour < 18:  # business hours: enterprise storms back
        return {"enterprise": 60_000, "startup": 6_000, "bronze": 9_000}
    return {"enterprise": 4_000, "startup": 3_000, "bronze": 4_000}


def main() -> None:
    allocator = TokenAllocationAlgorithm()
    print(f"{'hour':>4}  {'enterprise':>12}  {'startup':>9}  {'bronze':>8}   records")
    for hour in range(24):
        demands = traffic(hour)
        result = allocator.allocate(
            AllocationInput(
                interval_s=PERIOD_S,
                max_token_rate=CAPACITY_RPS,
                demands=demands,
                nodes=TENANT_TIER,
            )
        )
        budgets = result.allocations
        records = allocator.records.snapshot()
        print(
            f"{hour:>4}  {budgets['enterprise']:>12}  {budgets['startup']:>9}  "
            f"{budgets['bronze']:>8}   { {t: records[t] for t in sorted(records)} }"
        )

    records = allocator.records.snapshot()
    print()
    print("Ledger after 24h (positive = lent, negative = borrowed):")
    for tenant in sorted(records):
        print(f"  {tenant:12s} {records[tenant]:+d}")
    assert sum(records.values()) == 0, "the exchange ledger is always zero-sum"
    print(
        "\nWhat to notice:\n"
        "  * at night bronze borrows far beyond its 1/15 tier share —\n"
        "    work-conserving: nobody's budget sits idle;\n"
        "  * once enterprise traffic returns, re-compensation zeroes\n"
        "    bronze's budget and amortizes its debt — but at most its own\n"
        "    allocation per period, the paper's bounded-reclaim fairness\n"
        "    (no overcompensation, no starvation spiral);\n"
        "  * the ledger is exactly zero-sum at every step.\n"
        "Same Eq. 1-20 pipeline that runs on each OST, zero Lustre involved."
    )


if __name__ == "__main__":
    main()
