#!/usr/bin/env python3
"""Paper experiment §IV-E: surplus-token redistribution (Fig. 5-6).

Three high-priority jobs issue short interleaved I/O bursts while a
low-priority 16-process job hammers the OST continuously.  The report
shows AdapTBF protecting the bursts (big gains versus No BW) while lending
the idle tokens to the hog (far higher utilization than Static BW).

Run:  python examples/bursty_redistribution.py [--full]
"""

import sys

from repro.experiments import fig5_fig6
from repro.experiments.common import bench_scale, full_scale


def main() -> None:
    scale = full_scale() if "--full" in sys.argv else bench_scale()
    comparison = fig5_fig6.run(scale)
    print(fig5_fig6.report(comparison))


if __name__ == "__main__":
    main()
