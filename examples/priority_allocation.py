#!/usr/bin/env python3
"""Paper experiment §IV-D: priority-proportional token allocation (Fig. 3-4).

Runs four identical 16-process jobs with priorities 10/10/30/50 % under
No BW, Static BW and AdapTBF, then prints the achieved-bandwidth table, the
gain/loss table versus No BW, the per-mechanism throughput timelines and
the programmatic shape checks.

Run:  python examples/priority_allocation.py [--full]
      (--full uses the paper's 1 GiB files; default is a 1/10-scale run)
"""

import sys

from repro.experiments import fig3_fig4
from repro.experiments.common import bench_scale, full_scale


def main() -> None:
    scale = full_scale() if "--full" in sys.argv else bench_scale()
    comparison = fig3_fig4.run(scale)
    print(fig3_fig4.report(comparison))


if __name__ == "__main__":
    main()
