#!/usr/bin/env python3
"""Paper experiment §IV-F: token lending and re-compensation (Fig. 7-8).

Four equal-priority jobs; jobs 1-3 are quiet early (lending their tokens to
the busy job 4) and switch on continuous streams at scaled 20/50/80 s.  The
report prints each job's lending/borrowing *record* trajectory — the Fig. 7
arcs: records climb while lending, then fall as AdapTBF reclaims tokens
from the borrower once the lenders' own demand arrives.

Run:  python examples/lending_recompensation.py [--full]
"""

import sys

from repro.experiments import fig7_fig8
from repro.experiments.common import bench_scale, full_scale


def main() -> None:
    scale = full_scale() if "--full" in sys.argv else bench_scale()
    comparison = fig7_fig8.run(scale)
    print(fig7_fig8.report(comparison))


if __name__ == "__main__":
    main()
