#!/usr/bin/env python3
"""Declare and run a parameter-sweep campaign.

A campaign is a frozen declaration — a base registered scenario plus
parameter axes — that the engine expands into cells, fans out across
worker processes, and reduces to one flat summary row per cell.  This
example sweeps the ``quickstart`` scenario over an OST-capacity ×
allocation-interval grid, runs it with two workers, and prints the
aggregated table; pass ``--out DIR`` to also write the JSON/CSV artifacts
(manifest with per-cell rerun commands, rows, timing).

The built-in campaigns (``freq-sweep``, ``burst-grid``, ``scale-osts``)
are the same thing pre-declared:  python -m repro.experiments campaign list

Run:  python examples/campaign_sweep.py [--jobs N] [--out DIR]
"""

import argparse

from repro.campaigns import (
    CampaignSpec,
    ParameterAxis,
    run_campaign,
    write_artifacts,
)
from repro.metrics.report import format_campaign_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default=None, metavar="DIR")
    args = parser.parse_args()

    campaign = CampaignSpec(
        name="quickstart-grid",
        scenario="quickstart",
        axes=(
            ParameterAxis("capacity_mib_s", (512.0, 1024.0)),
            ParameterAxis("interval_s", (0.05, 0.1)),
        ),
        base_params={"file_mib": 64.0, "procs": 2},
        description="capacity × allocation interval over the quickstart mix",
    )
    print(campaign.describe())
    print()

    result = run_campaign(campaign, jobs=args.jobs)
    print(format_campaign_report(result))

    if args.out:
        written = write_artifacts(result, args.out)
        print("\nartifacts: " + ", ".join(str(p) for p in written.values()))


if __name__ == "__main__":
    main()
