"""Profile a registered scenario and print its hottest code paths.

The companion walkthrough to docs/performance.md: before optimizing
anything, measure — the simulation hot path has been rebuilt around what
profiles like this one showed (event dispatch, timeout churn, the OSS idle
wait), and the next speedup should start the same way.

Usage::

    PYTHONPATH=src python examples/profiling_walkthrough.py
    PYTHONPATH=src python examples/profiling_walkthrough.py client-swarm n_clients=200
    PYTHONPATH=src python examples/profiling_walkthrough.py multiost n_osts=8 duration=1.0
    PYTHONPATH=src python examples/profiling_walkthrough.py --backend array
    PYTHONPATH=src python examples/profiling_walkthrough.py --diff quickstart

The first argument is any registered scenario name (see
``python -m repro.experiments list``); the rest are ``key=value`` factory
overrides.  Output: wall time, events/sec, simulated-sec per wall-sec, and
the top-10 functions by cumulative profile time.

``--backend NAME`` profiles the same scenario under a different kernel
backend (heap/array — see docs/performance.md, "Kernel backends"), so a
before/after pair of runs shows where the array calendar moves time.
``--diff`` skips profiling entirely and instead dispatches the scenario
under *both* backends, asserting the event streams are identical — the
fastest way to check a kernel change didn't move a single dispatch.

After changing hot-path code, hold both lines: re-run
``python benchmarks/regression.py --quick`` (speed) and the tier-1 tests
(determinism — the event-trace tests fail if a single dispatch moved).
"""

import cProfile
import pstats
import sys
import time

from repro.cluster.builder import build
from repro.cluster.experiment import execute
from repro.scenarios import REGISTRY


def parse_value(raw: str):
    """CLI override values: int → float → bool → string, like `--param`."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def main(argv) -> int:
    argv = list(argv)
    backend = None
    diff = False
    if "--diff" in argv:
        argv.remove("--diff")
        diff = True
    if "--backend" in argv:
        at = argv.index("--backend")
        try:
            backend = argv[at + 1]
        except IndexError:
            raise SystemExit("--backend requires a name (heap/array)")
        del argv[at : at + 2]

    name = argv[0] if argv else "quickstart"
    params = {}
    for raw in argv[1:]:
        key, _, value = raw.partition("=")
        if not _:
            raise SystemExit(f"override {raw!r} is not key=value")
        params[key] = parse_value(value)

    spec = REGISTRY.build(name, **params)

    if diff:
        from repro.sim.tracediff import diff_backends, format_report

        report = diff_backends(spec)
        print(format_report(report))
        return 0 if report.equal else 1

    if backend is not None:
        spec = spec.with_run(backend=backend)
    print(
        f"profiling scenario {name!r} "
        f"(backend {spec.run.backend!r}): {spec.description}"
    )

    # Build outside the profile: we want the simulation hot path, not
    # scenario materialization, to dominate the report.
    cluster = build(spec)
    env = cluster.env

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = execute(cluster)
    profiler.disable()
    wall = time.perf_counter() - start

    print(
        f"\n{env.scheduled:,} events in {wall:.3f}s wall "
        f"({env.scheduled / wall:,.0f} events/s, "
        f"{env.now / wall:.2f} simulated-s per wall-s, "
        f"aggregate {result.summary.aggregate_mib_s:.0f} MiB/s)\n"
    )

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print("top-10 by cumulative time (see docs/performance.md for how the")
    print("current hot-path design answers what earlier profiles showed):\n")
    stats.print_stats(10)

    print(
        "next: `python benchmarks/regression.py --quick` gates any change\n"
        "against benchmarks/baselines.json; docs/performance.md covers\n"
        "reading BENCH_engine.json and updating the baselines."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
