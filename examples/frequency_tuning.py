#!/usr/bin/env python3
"""Paper experiment §IV-H: choosing the observation period (Fig. 9).

Sweeps AdapTBF's token-allocation period over the §IV-F workload and prints
aggregate throughput per period.  Shorter periods adapt to bursts faster;
the paper picks 100 ms because the framework's own overhead (~25 ms per
round in their prototype) bounds how low the period can go.

Run:  python examples/frequency_tuning.py [--full]
"""

import sys

from repro.experiments import fig9
from repro.experiments.common import bench_scale, full_scale


def main() -> None:
    scale = full_scale() if "--full" in sys.argv else bench_scale()
    sweep = fig9.run(scale)
    print(fig9.report(sweep))


if __name__ == "__main__":
    main()
