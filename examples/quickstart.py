#!/usr/bin/env python3
"""Quickstart: put AdapTBF in front of two competing jobs.

Uses the declarative scenario pipeline: the ``quickstart`` scenario from
the registry (a 4-node job against a 1-node bandwidth hog on one OST) is
run under FCFS and under AdapTBF, showing what AdapTBF does about the
contention: the big job gets its proportional share, the hog is throttled —
but only while the big job actually needs the bandwidth.

The same scenario is available from the command line::

    python -m repro.experiments run quickstart --mechanism adaptbf

Run:  python examples/quickstart.py
"""

from repro.scenarios import REGISTRY, run_scenario


def main() -> None:
    # Two jobs: `science` was allocated 4 compute nodes, `hog` only 1 —
    # so science is entitled to 80% of each storage target it touches.
    # The mechanism is part of the spec's policy; everything else is shared.
    for mechanism in ("none", "adaptbf"):
        spec = REGISTRY.build("quickstart", mechanism=mechanism)
        result = run_scenario(spec)
        print(f"--- mechanism: {mechanism} ---")
        for job in spec.job_ids:
            bw = result.summary.job(job)
            done = result.job_completion_s.get(job, float("nan"))
            print(f"  {job:8s}  {bw:7.1f} MiB/s   finished at {done:5.2f} s")
        print(f"  aggregate {result.summary.aggregate_mib_s:7.1f} MiB/s")
        print()

    print(
        "Under FCFS both jobs split the OST evenly; under AdapTBF the\n"
        "4-node job gets ~4x the hog's bandwidth while it runs, and the\n"
        "hog inherits the whole OST the moment the big job completes —\n"
        "no tokens are wasted."
    )


if __name__ == "__main__":
    main()
