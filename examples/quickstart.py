#!/usr/bin/env python3
"""Quickstart: put AdapTBF in front of two competing jobs.

Builds a one-OST simulated Lustre cluster, runs a 4-node job against a
1-node bandwidth hog, and shows what AdapTBF does about it: the big job
gets its proportional share, the hog is throttled — but only while the big
job actually needs the bandwidth.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterConfig, Mechanism, run_experiment
from repro.workloads import JobSpec, ProcessSpec, SequentialWritePattern

MIB = 1 << 20


def main() -> None:
    # Two jobs: `science` was allocated 4 compute nodes, `hog` only 1 —
    # so science is entitled to 80% of each storage target it touches.
    jobs = [
        JobSpec(
            job_id="science",
            nodes=4,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(256 * MIB)) for _ in range(4)
            ),
        ),
        JobSpec(
            job_id="hog",
            nodes=1,
            processes=tuple(
                ProcessSpec(SequentialWritePattern(256 * MIB)) for _ in range(4)
            ),
        ),
    ]

    for mechanism in (Mechanism.NONE, Mechanism.ADAPTBF):
        config = ClusterConfig(
            mechanism=mechanism,
            capacity_mib_s=1024.0,  # one SSD-class OST
            interval_s=0.1,  # AdapTBF observation period (paper: 100 ms)
        )
        result = run_experiment(config, jobs)
        print(f"--- mechanism: {mechanism.value} ---")
        for job in ("science", "hog"):
            bw = result.summary.job(job)
            done = result.job_completion_s.get(job, float("nan"))
            print(f"  {job:8s}  {bw:7.1f} MiB/s   finished at {done:5.2f} s")
        print(f"  aggregate {result.summary.aggregate_mib_s:7.1f} MiB/s")
        print()

    print(
        "Under FCFS both jobs split the OST evenly; under AdapTBF the\n"
        "4-node job gets ~4x the hog's bandwidth while it runs, and the\n"
        "hog inherits the whole OST the moment the big job completes —\n"
        "no tokens are wasted."
    )


if __name__ == "__main__":
    main()
