#!/usr/bin/env python3
"""Decentralized control over multiple OSTs (paper §II-B).

The paper's scalability argument: rather than coordinating bandwidth
globally, run one *independent* AdapTBF instance per storage target; if
every target is locally fair and work-conserving, the sum over targets is
globally fair.  This example runs the registry's ``multiost`` scenario —
a 1-node hog against a 6-node job whose files are spread over four OSTs
(Lustre-style round-robin placement with striping) — and shows:

* four controllers making decisions from purely local job stats,
* the global bandwidth split tracking the 6:1 priority anyway,
* zero communication between targets (by construction — each controller
  object only references its own OSS).

The same scenario is available from the command line::

    python -m repro.experiments run multiost --param n_osts=4

Run:  python examples/decentralized_multiost.py
"""

from repro.scenarios import REGISTRY, run_scenario


def main() -> None:
    spec = REGISTRY.build(
        "multiost",
        n_osts=4,  # four independent (OSS, OST) stacks
        stripe_count=2,  # each file striped across two OSTs
        capacity_mib_s=256.0,  # per OST => 1 GiB/s aggregate
        duration=3.0,
    )
    result = run_scenario(spec)

    print("Global achieved bandwidth (4 OSTs x 256 MiB/s):")
    for job in ("simulation", "hog"):
        print(f"  {job:11s} {result.summary.job(job):7.1f} MiB/s")
    ratio = result.summary.job("simulation") / result.summary.job("hog")
    print(f"  ratio {ratio:.2f} (priority ratio: 6.0)")
    print(f"  aggregate {result.summary.aggregate_mib_s:.1f} MiB/s, "
          f"mean OST utilization {result.ost_utilization:.2f}")
    print()
    print("Each OST's controller ran independently:")
    for index, history in enumerate(result.per_ost_histories):
        last = history[-1]
        allocs = {j: a for j, a in sorted(last.result.allocations.items())}
        print(
            f"  OST{index:04d}: {len(history):3d} rounds, "
            f"last allocation {allocs} tokens/round"
        )
    print()
    print(
        "No controller saw anything beyond its own OST's job stats, yet the\n"
        "global split honours the 6:1 compute allocation — the paper's\n"
        "decentralization claim in action."
    )


if __name__ == "__main__":
    main()
